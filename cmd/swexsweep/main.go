// Command swexsweep orchestrates the paper's experiment matrices as
// parallel simulation sweeps with a content-addressed result cache and
// crash-safe resume (see internal/sweep).
//
// Usage:
//
//	swexsweep [-quick] [-workers N] [-cache DIR] <matrix>... | all
//	swexsweep -coordinator URL [-quick] <matrix>... | all
//	swexsweep -list [-quick] <matrix>... | all
//	swexsweep -status -cache DIR
//	swexsweep -cache DIR compact
//
// Matrices: table1 table2 table3 fig2 fig3 fig4 fig5 fig6 scaling
//
// The default mode runs the named matrices through one shared worker pool,
// prints each exhibit, and reports how many simulations actually executed
// versus how many were served from the cache. With -cache, finished jobs
// persist: a killed sweep resumes from its manifest journal by skipping
// completed work, and re-running an unchanged matrix executes zero
// simulations. Sweep output is byte-identical to a serial run at any
// worker count.
//
// With -coordinator, jobs execute on a swexd coordinator's workers (see
// cmd/swexd) instead of in process; the rendered exhibits are
// byte-identical either way, and the coordinator's shared cache dedups
// across every client that ever submitted the same jobs.
//
// -list prints each job's content hash and description without running
// anything (the matrix as the cache will see it). -status summarizes a
// cache directory's manifest journal — distinct completed and failed
// jobs, with the failures' journaled errors (stacks included) — and
// exits non-zero when the journal records failures, so scripts can gate
// on a clean sweep. The compact subcommand rewrites the manifest journal
// down to one record per live entry (the journal is append-only during
// sweeps, so retried and re-journaled jobs accumulate superseded lines).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"swex"
	"swex/internal/sweep"
	"swex/internal/swexd"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced problem sizes")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = one per core)")
	cacheDir := flag.String("cache", "", "content-addressed result cache directory (empty = in-memory only)")
	salt := flag.String("salt", "", "extra key material mixed into every job hash")
	retries := flag.Int("retries", 0, "re-execution attempts for failed jobs")
	cycleBudget := flag.Int64("cycle-budget", 0, "per-job simulated-cycle limit (0 = unbounded)")
	wallBudget := flag.Duration("wall-budget", 0, "per-job wall-clock failure threshold (0 = off; makes failures machine-speed dependent)")
	coordinator := flag.String("coordinator", "", "swexd coordinator base URL (e.g. http://host:7009); jobs execute on its workers")
	list := flag.Bool("list", false, "print the job matrix (hash and description) without running")
	status := flag.Bool("status", false, "summarize the cache manifest journal and exit (non-zero if failures are journaled)")
	flag.Usage = usage
	flag.Parse()

	if *status {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "swexsweep: -status needs -cache DIR")
			os.Exit(2)
		}
		failed, err := printStatus(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swexsweep: %v\n", err)
			os.Exit(1)
		}
		if failed > 0 {
			os.Exit(1)
		}
		return
	}

	if len(flag.Args()) == 1 && flag.Args()[0] == "compact" {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "swexsweep: compact needs -cache DIR")
			os.Exit(2)
		}
		if err := compact(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "swexsweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	selected, ok := selectMatrices(flag.Args())
	if !ok {
		usage()
		os.Exit(2)
	}
	opts := swex.Options{Quick: *quick}

	if *list {
		for _, m := range selected {
			fmt.Printf("# %s: %s\n", m.Name, m.Caption)
			for _, job := range m.Jobs(opts) {
				key, err := job.Key(*salt)
				if err != nil {
					fmt.Fprintf(os.Stderr, "swexsweep: %s: %v\n", m.Name, err)
					os.Exit(1)
				}
				fmt.Printf("%s  %s\n", sweep.HashKey(key)[:16], job)
			}
		}
		return
	}

	if *coordinator != "" {
		runRemote(*coordinator, *salt, selected, opts)
		return
	}

	sweeper, err := swex.NewSweeper(swex.SweeperConfig{
		Workers:     *workers,
		CacheDir:    *cacheDir,
		Salt:        *salt,
		Retries:     *retries,
		CycleBudget: swex.Cycle(*cycleBudget),
		WallBudget:  *wallBudget,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "swexsweep: %v\n", err)
		os.Exit(1)
	}
	defer sweeper.Close()
	opts.Sweep = sweeper

	for _, m := range selected {
		start := time.Now()
		before := sweeper.TotalExecs()
		out, err := m.Render(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swexsweep: %s: %v\n", m.Name, err)
			os.Exit(1)
		}
		executed := sweeper.TotalExecs() - before
		jobs := len(m.Jobs(opts))
		fmt.Printf("== %s: %s\n\n%s\n", m.Name, m.Caption, out)
		fmt.Fprintf(os.Stderr, "swexsweep: %s: %d job(s), %d executed, %d from cache, %.1fs on %d worker(s)\n",
			m.Name, jobs, executed, jobs-executed, time.Since(start).Seconds(), sweeper.Workers())
	}
}

// runRemote renders the selected matrices through a swexd coordinator.
// Execution counts come from the coordinator's counters, so "executed"
// reflects actual simulations anywhere in the cluster and "from cache"
// covers hits against the coordinator's shared store.
func runRemote(base, salt string, selected []swex.Matrix, opts swex.Options) {
	ctx := context.Background()
	client := &swexd.Client{Base: base, Salt: salt}
	opts.Sweep = client
	for _, m := range selected {
		start := time.Now()
		before := remoteExecs(ctx, client)
		out, err := m.Render(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swexsweep: %s: %v\n", m.Name, err)
			os.Exit(1)
		}
		executed := remoteExecs(ctx, client) - before
		jobs := int64(len(m.Jobs(opts)))
		fmt.Printf("== %s: %s\n\n%s\n", m.Name, m.Caption, out)
		fmt.Fprintf(os.Stderr, "swexsweep: %s: %d job(s), %d executed, %d from cache, %.1fs via %s\n",
			m.Name, jobs, executed, jobs-executed, time.Since(start).Seconds(), base)
	}
}

// remoteExecs samples the coordinator's execution counter (0 when
// unreachable; the subsequent submit will surface the real error).
func remoteExecs(ctx context.Context, client *swexd.Client) int64 {
	vars, err := client.Vars(ctx)
	if err != nil {
		return 0
	}
	return vars["executions"]
}

// selectMatrices resolves the argument list ("all" or matrix names).
func selectMatrices(args []string) ([]swex.Matrix, bool) {
	if len(args) == 0 {
		return nil, false
	}
	if len(args) == 1 && args[0] == "all" {
		return swex.Matrices(), true
	}
	var selected []swex.Matrix
	for _, a := range args {
		m, ok := swex.MatrixByName(a)
		if !ok {
			fmt.Fprintf(os.Stderr, "swexsweep: unknown matrix %q\n\n", a)
			return nil, false
		}
		selected = append(selected, m)
	}
	return selected, true
}

// printStatus summarizes a cache directory's manifest journal and returns
// the number of journaled failures.
func printStatus(dir string) (failed int, err error) {
	c, err := sweep.OpenCache(dir)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	st := c.Status()
	fmt.Printf("cache %s: %d job(s) done, %d failed\n", dir, st.Done, st.Failed)
	for _, f := range st.Failures {
		fmt.Printf("  FAILED %s\n    %s\n", f.Key, f.Err)
	}
	return st.Failed, nil
}

// compact rewrites a cache directory's manifest journal down to its live
// records.
func compact(dir string) error {
	c, err := sweep.OpenCache(dir)
	if err != nil {
		return err
	}
	defer c.Close()
	records, err := c.Compact()
	if err != nil {
		return err
	}
	fmt.Printf("cache %s: manifest compacted to %d record(s)\n", dir, records)
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: swexsweep [flags] <matrix>... | all
       swexsweep -coordinator URL [-quick] <matrix>... | all
       swexsweep -list [-quick] <matrix>... | all
       swexsweep -status -cache DIR
       swexsweep -cache DIR compact

matrices:
`)
	for _, m := range swex.Matrices() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", m.Name, m.Caption)
	}
	fmt.Fprintf(os.Stderr, "\nflags:\n")
	flag.PrintDefaults()
}
