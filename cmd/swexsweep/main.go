// Command swexsweep orchestrates the paper's experiment matrices as
// parallel simulation sweeps with a content-addressed result cache and
// crash-safe resume (see internal/sweep).
//
// Usage:
//
//	swexsweep [-quick] [-workers N] [-cache DIR] <matrix>... | all
//	swexsweep -list [-quick] <matrix>... | all
//	swexsweep -status -cache DIR
//
// Matrices: table1 table2 table3 fig2 fig3 fig4 fig5 fig6 scaling
//
// The default mode runs the named matrices through one shared worker pool,
// prints each exhibit, and reports how many simulations actually executed
// versus how many were served from the cache. With -cache, finished jobs
// persist: a killed sweep resumes from its manifest journal by skipping
// completed work, and re-running an unchanged matrix executes zero
// simulations. Sweep output is byte-identical to a serial run at any
// worker count.
//
// -list prints each job's content hash and description without running
// anything (the matrix as the cache will see it). -status summarizes a
// cache directory's manifest journal: distinct completed and failed jobs,
// with the failures' journaled errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"swex"
	"swex/internal/sweep"
)

// matrix names one sweep-backed experiment: its job builder and its
// assembler/renderer.
type matrix struct {
	name    string
	caption string
	jobs    func(swex.Options) []swex.SweepJob
	run     func(swex.Options) (string, error)
}

func matrices() []matrix {
	return []matrix{
		{"table1", "average software-extension latencies (C vs assembly)", swex.Table1Jobs,
			func(o swex.Options) (string, error) {
				d, err := swex.Table1(o)
				if err != nil {
					return "", err
				}
				return d.Table().String(), nil
			}},
		{"table2", "median handler cycle breakdown", swex.Table2Jobs,
			func(o swex.Options) (string, error) {
				d, err := swex.Table2(o)
				if err != nil {
					return "", err
				}
				return d.String(), nil
			}},
		{"table3", "application characteristics and sequential times", swex.Table3Jobs,
			func(o swex.Options) (string, error) {
				rows, err := swex.Table3(o)
				if err != nil {
					return "", err
				}
				return swex.Table3Table(rows).String(), nil
			}},
		{"fig2", "WORKER protocol performance vs worker-set size", swex.Figure2Jobs,
			func(o swex.Options) (string, error) {
				d, err := swex.Figure2(o)
				if err != nil {
					return "", err
				}
				return d.Figure().String(), nil
			}},
		{"fig3", "TSP cache-configuration study (instruction/data thrashing)", swex.Figure3Jobs,
			func(o swex.Options) (string, error) {
				d, err := swex.Figure3(o)
				if err != nil {
					return "", err
				}
				return d.Table().String(), nil
			}},
		{"fig4", "application speedups across the protocol spectrum", swex.Figure4Jobs,
			func(o swex.Options) (string, error) {
				d, err := swex.Figure4(o)
				if err != nil {
					return "", err
				}
				return d.Table().String(), nil
			}},
		{"fig5", "TSP on 256 nodes", swex.Figure5Jobs,
			func(o swex.Options) (string, error) {
				d, err := swex.Figure5(o)
				if err != nil {
					return "", err
				}
				return d.Table().String(), nil
			}},
		{"fig6", "EVOLVE worker-set histogram", swex.Figure6Jobs,
			func(o swex.Options) (string, error) {
				d, err := swex.Figure6(o)
				if err != nil {
					return "", err
				}
				return d.Table().String(), nil
			}},
		{"scaling", "TSP speedup vs machine size across the spectrum", swex.ScalingJobs,
			func(o swex.Options) (string, error) {
				d, err := swex.ScalingStudy(o)
				if err != nil {
					return "", err
				}
				return d.Figure().String(), nil
			}},
	}
}

func main() {
	quick := flag.Bool("quick", false, "run reduced problem sizes")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = one per core)")
	cacheDir := flag.String("cache", "", "content-addressed result cache directory (empty = in-memory only)")
	salt := flag.String("salt", "", "extra key material mixed into every job hash")
	retries := flag.Int("retries", 0, "re-execution attempts for failed jobs")
	cycleBudget := flag.Int64("cycle-budget", 0, "per-job simulated-cycle limit (0 = unbounded)")
	wallBudget := flag.Duration("wall-budget", 0, "per-job wall-clock failure threshold (0 = off; makes failures machine-speed dependent)")
	list := flag.Bool("list", false, "print the job matrix (hash and description) without running")
	status := flag.Bool("status", false, "summarize the cache manifest journal and exit")
	flag.Usage = usage
	flag.Parse()

	if *status {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "swexsweep: -status needs -cache DIR")
			os.Exit(2)
		}
		if err := printStatus(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "swexsweep: %v\n", err)
			os.Exit(1)
		}
		return
	}

	selected, ok := selectMatrices(flag.Args())
	if !ok {
		usage()
		os.Exit(2)
	}
	opts := swex.Options{Quick: *quick}

	if *list {
		for _, m := range selected {
			fmt.Printf("# %s: %s\n", m.name, m.caption)
			for _, job := range m.jobs(opts) {
				key, err := job.Key(*salt)
				if err != nil {
					fmt.Fprintf(os.Stderr, "swexsweep: %s: %v\n", m.name, err)
					os.Exit(1)
				}
				fmt.Printf("%s  %s\n", sweep.HashKey(key)[:16], job)
			}
		}
		return
	}

	sweeper, err := swex.NewSweeper(swex.SweeperConfig{
		Workers:     *workers,
		CacheDir:    *cacheDir,
		Salt:        *salt,
		Retries:     *retries,
		CycleBudget: swex.Cycle(*cycleBudget),
		WallBudget:  *wallBudget,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "swexsweep: %v\n", err)
		os.Exit(1)
	}
	defer sweeper.Close()
	opts.Sweep = sweeper

	for _, m := range selected {
		start := time.Now()
		before := sweeper.TotalExecs()
		out, err := m.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swexsweep: %s: %v\n", m.name, err)
			os.Exit(1)
		}
		executed := sweeper.TotalExecs() - before
		jobs := len(m.jobs(opts))
		fmt.Printf("== %s: %s\n\n%s\n", m.name, m.caption, out)
		fmt.Fprintf(os.Stderr, "swexsweep: %s: %d job(s), %d executed, %d from cache, %.1fs on %d worker(s)\n",
			m.name, jobs, executed, jobs-executed, time.Since(start).Seconds(), sweeper.Workers())
	}
}

// selectMatrices resolves the argument list ("all" or matrix names).
func selectMatrices(args []string) ([]matrix, bool) {
	all := matrices()
	if len(args) == 0 {
		return nil, false
	}
	if len(args) == 1 && args[0] == "all" {
		return all, true
	}
	byName := map[string]matrix{}
	for _, m := range all {
		byName[m.name] = m
	}
	var selected []matrix
	for _, a := range args {
		m, ok := byName[a]
		if !ok {
			fmt.Fprintf(os.Stderr, "swexsweep: unknown matrix %q\n\n", a)
			return nil, false
		}
		selected = append(selected, m)
	}
	return selected, true
}

// printStatus summarizes a cache directory's manifest journal.
func printStatus(dir string) error {
	c, err := sweep.OpenCache(dir)
	if err != nil {
		return err
	}
	defer c.Close()
	st := c.Status()
	fmt.Printf("cache %s: %d job(s) done, %d failed\n", dir, st.Done, st.Failed)
	for _, f := range st.Failures {
		fmt.Printf("  FAILED %s\n    %s\n", f.Key, f.Err)
	}
	return nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: swexsweep [flags] <matrix>... | all
       swexsweep -list [-quick] <matrix>... | all
       swexsweep -status -cache DIR

matrices:
`)
	for _, m := range matrices() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", m.name, m.caption)
	}
	fmt.Fprintf(os.Stderr, "\nflags:\n")
	flag.PrintDefaults()
}
