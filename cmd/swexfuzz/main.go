// Command swexfuzz fuzzes the simulated machine's memory model against a
// sequential-consistency oracle (see internal/litmus). It generates small
// multi-threaded litmus programs — a hand-written corpus (store buffering,
// message passing, IRIW, coherence, read-modify-write) plus seeded random
// programs — runs each across several points of the protocol spectrum,
// and judges every run's logged observations with an exact SC decision
// procedure. Any outcome no sequentially consistent interleaving explains
// is reported with a minimal constraint-cycle witness and the exit status
// is 1.
//
// Usage:
//
//	swexfuzz [-seed N] [-programs N] [-nodes N] [-specs full,h1ack,dir1sw]
//	         [-threads N] [-vars N] [-ops N] [-overrides] [-limit N]
//	         [-checker auto|exhaustive|constraints]
//	         [-cache DIR] [-workers N] [-coordinator URL]
//	swexfuzz -weakened [-nodes N]
//
// Runs are routed through the sweep layer, so -cache makes campaigns
// resumable (a re-run with a warm cache re-executes nothing and prints
// byte-identical output) and -coordinator distributes the same jobs over a
// swexd worker fleet. Everything on stdout is a deterministic function of
// the flags; timings and cache statistics go to stderr.
//
// -weakened runs the negative control instead: a machine configured to
// silently drop an invalidation (machine.Config.LoseInv) executes a
// message-passing program, and swexfuzz exits 0 only if the oracle flags
// the resulting stale read with a constraint-cycle witness. It proves the
// pipeline can actually see a coherence bug, so a fuzzing campaign's
// "zero violations" means something.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"swex/internal/litmus"
	"swex/internal/machine"
	"swex/internal/proto"
	"swex/internal/sim"
	"swex/internal/sweep"
	"swex/internal/swexd"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "swexfuzz: %v\n", err)
		os.Exit(1)
	}
}

// checkerFn is one of the oracle's decision procedures.
type checkerFn func(litmus.Program, [][]uint64) (litmus.Verdict, error)

// entry is one program of the campaign with its display name.
type entry struct {
	name string
	prog litmus.Program
}

// run executes the whole campaign and returns an error for flag misuse,
// simulation failures, or SC violations (so main exits nonzero).
func run(args []string) error {
	fs := flag.NewFlagSet("swexfuzz", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "random program generator seed")
	programs := fs.Int("programs", 100, "number of generated programs (the corpus is always included)")
	nodes := fs.Int("nodes", 4, "machine size in nodes")
	threads := fs.Int("threads", 0, "threads per generated program (0 = generator default)")
	vars := fs.Int("vars", 0, "shared variables per generated program (0 = generator default)")
	ops := fs.Int("ops", 0, "operations per generated thread (0 = generator default)")
	specs := fs.String("specs", "full,h1ack,dir1sw", "comma-separated protocol spectrum aliases to sweep")
	overrides := fs.Bool("overrides", true, "let generated programs pin variables to other spectrum points")
	limit := fs.Int64("limit", 50_000_000, "per-run simulated-cycle budget (0 = unbounded)")
	checker := fs.String("checker", "auto", "decision procedure: auto, exhaustive, or constraints")
	cacheDir := fs.String("cache", "", "content-addressed result cache directory (empty = no cache)")
	workers := fs.Int("workers", 0, "concurrent local simulations (0 = GOMAXPROCS)")
	coordinator := fs.String("coordinator", "", "swexd coordinator base URL (empty = run locally)")
	weakened := fs.Bool("weakened", false, "run the lost-invalidation negative control and require the oracle to flag it")
	fs.Parse(args)
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *nodes < 2 {
		return fmt.Errorf("-nodes %d: need at least 2 nodes to exercise coherence", *nodes)
	}
	if *programs < 0 {
		return fmt.Errorf("-programs %d: must be non-negative", *programs)
	}
	judge, err := judgeFor(*checker)
	if err != nil {
		return err
	}
	if *weakened {
		return runWeakened(*nodes, sim.Cycle(*limit))
	}

	aliases, specList, err := resolveSpecs(*specs)
	if err != nil {
		return err
	}
	entries, dropped, err := buildPrograms(*seed, *programs, *nodes, *threads, *vars, *ops, *overrides, aliases, specList)
	if err != nil {
		return err
	}
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "swexfuzz: %d corpus program(s) need more than %d nodes, skipped\n", dropped, *nodes)
	}

	// The job matrix: spec-major, program-minor, so the summary's per-spec
	// counters follow submission order. Programs whose per-variable
	// overrides are not expressible by a base machine's protocol software
	// are skipped on that base (proto.HomeCtl.Configure would reject the
	// configuration).
	var jobs []sweep.Job
	type meta struct{ spec, prog int }
	var metas []meta
	skipped := make([]int, len(aliases))
	for s, spec := range specList {
		for p, e := range entries {
			if !litmus.CompatibleBase(e.prog, spec) {
				skipped[s]++
				continue
			}
			job := sweep.LitmusJob(e.prog, machine.DefaultConfig(*nodes, spec))
			job.Limit = sim.Cycle(*limit)
			jobs = append(jobs, job)
			metas = append(metas, meta{spec: s, prog: p})
		}
	}

	start := time.Now()
	results, execs, cached, err := execute(jobs, *coordinator, *cacheDir, *workers, sim.Cycle(*limit))
	if err != nil {
		return err
	}

	// Judge every run. Violations print in submission order with the
	// constraint-cycle witness; everything on stdout is deterministic.
	corpus := len(entries) - *programs
	fmt.Printf("swexfuzz: seed %d, %d corpus + %d generated program(s), %d node(s)\n",
		*seed, corpus, *programs, *nodes)
	runs := make([]int, len(aliases))
	violations := make([]int, len(aliases))
	total, bad := 0, 0
	for i, res := range results {
		m := metas[i]
		e := entries[m.prog]
		obs, err := litmus.ThreadObs(e.prog, res.Obs, jobs[i].Config.ThreadsPerNode)
		if err != nil {
			return fmt.Errorf("%s under %s: %v", e.name, aliases[m.spec], err)
		}
		v, err := judge(e.prog, obs)
		if err != nil {
			return fmt.Errorf("%s under %s: %v", e.name, aliases[m.spec], err)
		}
		runs[m.spec]++
		total++
		if !v.OK {
			violations[m.spec]++
			bad++
			witness := v.Witness
			if witness == "" {
				if cv, err := litmus.CheckConstraints(e.prog, obs); err == nil {
					witness = cv.Witness
				}
			}
			fmt.Printf("VIOLATION: %s under %s\n  program: %s\n  observed: %v\n  witness: %s\n",
				e.name, aliases[m.spec], e.prog, obs, witness)
		}
	}
	for s, alias := range aliases {
		line := fmt.Sprintf("spec %s: %d run(s), %d violation(s)", alias, runs[s], violations[s])
		if skipped[s] > 0 {
			line += fmt.Sprintf(", %d skipped (overrides not expressible on this base)", skipped[s])
		}
		fmt.Println(line)
	}
	fmt.Printf("total: %d run(s), %d violation(s)\n", total, bad)

	elapsed := time.Since(start)
	if execs >= 0 {
		fmt.Fprintf(os.Stderr, "swexfuzz: %d simulation(s), %d cache hit(s), %.1fs (%.1f runs/s)\n",
			execs, cached, elapsed.Seconds(), float64(total)/elapsed.Seconds())
	} else {
		fmt.Fprintf(os.Stderr, "swexfuzz: %d run(s) via %s, %.1fs\n", total, *coordinator, elapsed.Seconds())
	}
	if bad > 0 {
		return fmt.Errorf("%d sequential-consistency violation(s)", bad)
	}
	return nil
}

// judgeFor maps the -checker flag to a decision procedure.
func judgeFor(name string) (checkerFn, error) {
	switch name {
	case "auto":
		return litmus.CheckSC, nil
	case "exhaustive":
		return litmus.CheckExhaustive, nil
	case "constraints":
		return litmus.CheckConstraints, nil
	}
	return nil, fmt.Errorf("-checker %q: want auto, exhaustive, or constraints", name)
}

// resolveSpecs parses the -specs list into aliases and their specs.
func resolveSpecs(list string) ([]string, []proto.Spec, error) {
	var aliases []string
	var specs []proto.Spec
	for _, alias := range strings.Split(list, ",") {
		alias = strings.TrimSpace(alias)
		if alias == "" {
			continue
		}
		spec, err := litmus.SpecByAlias(alias)
		if err != nil {
			return nil, nil, err
		}
		aliases = append(aliases, alias)
		specs = append(specs, spec)
	}
	if len(aliases) == 0 {
		return nil, nil, fmt.Errorf("-specs %q names no spectrum points", list)
	}
	return aliases, specs, nil
}

// buildPrograms assembles the campaign's program list: the corpus tests
// that fit the machine, then count seeded random ones. Generated
// per-variable overrides draw from the software-capable subset of the
// swept aliases, so every override has at least one base that can run it.
func buildPrograms(seed uint64, count, nodes, threads, vars, ops int, overrides bool, aliases []string, specs []proto.Spec) ([]entry, int, error) {
	if threads > nodes {
		return nil, 0, fmt.Errorf("-threads %d: generated programs run one thread per node, machine has %d", threads, nodes)
	}
	// The override pool excludes software-only specs: an h0 override is
	// expressible only on an h0 base, where in turn no other software
	// override is, so admitting it would generate programs no swept base
	// can run.
	var pool []string
	if overrides {
		for i, spec := range specs {
			if spec.UsesSoftware() && !spec.SoftwareOnly {
				pool = append(pool, aliases[i])
			}
		}
	}
	var entries []entry
	dropped := 0
	for _, tc := range litmus.Corpus() {
		if len(tc.Prog.Threads) > nodes {
			dropped++
			continue
		}
		entries = append(entries, entry{name: tc.Name, prog: tc.Prog})
	}
	r := sim.NewRand(seed)
	cfg := litmus.GenConfig{Threads: threads, Vars: vars, Ops: ops, SpecAliases: pool}
	for i := 0; i < count; i++ {
		p := litmus.Generate(r, cfg)
		if len(p.Threads) > nodes {
			return nil, 0, fmt.Errorf("generated program needs %d nodes, machine has %d (raise -nodes or lower -threads)", len(p.Threads), nodes)
		}
		entries = append(entries, entry{name: fmt.Sprintf("gen%04d", i), prog: p})
	}
	return entries, dropped, nil
}

// execute runs the matrix locally or through a coordinator and returns
// results in submission order plus execution/cache counters (execs is -1
// when a coordinator ran the jobs and the split is unknown).
func execute(jobs []sweep.Job, coordinator, cacheDir string, workers int, limit sim.Cycle) ([]sweep.Result, int, int, error) {
	ctx := context.Background()
	if coordinator != "" {
		client := &swexd.Client{Base: coordinator}
		results, err := client.Run(ctx, jobs)
		if err != nil {
			return nil, 0, 0, err
		}
		return results, -1, 0, nil
	}
	runner, err := sweep.NewRunner(sweep.Config{Workers: workers, CacheDir: cacheDir, CycleBudget: limit})
	if err != nil {
		return nil, 0, 0, err
	}
	defer runner.Close()
	outcomes := runner.Sweep(ctx, jobs)
	results := make([]sweep.Result, len(outcomes))
	cached := 0
	for i, out := range outcomes {
		if out.Err != nil {
			return nil, 0, 0, fmt.Errorf("%s: %v", out.Job, out.Err)
		}
		results[i] = out.Result
		if out.Cached {
			cached++
		}
	}
	return results, runner.TotalExecs(), cached, nil
}

// runWeakened executes the negative control and errors unless the oracle
// flags the lost-invalidation outcome with a constraint-cycle witness.
func runWeakened(nodes int, limit sim.Cycle) error {
	p, cfg := litmus.WeakenedFixture(nodes)
	job := sweep.LitmusJob(p, cfg)
	job.Limit = limit
	res, err := sweep.Execute(job, 0)
	if err != nil {
		return fmt.Errorf("weakened fixture: %v", err)
	}
	obs, err := litmus.ThreadObs(p, res.Obs, cfg.ThreadsPerNode)
	if err != nil {
		return fmt.Errorf("weakened fixture: %v", err)
	}
	v, err := litmus.CheckConstraints(p, obs)
	if err != nil {
		return fmt.Errorf("weakened fixture: %v", err)
	}
	if v.OK {
		return fmt.Errorf("weakened fixture NOT flagged: the oracle judged the lost-invalidation outcome %v sequentially consistent; the pipeline cannot see coherence bugs", obs)
	}
	fmt.Printf("weakened fixture flagged as expected\n  program: %s\n  observed: %v\n  witness: %s\n", p, obs, v.Witness)
	return nil
}
