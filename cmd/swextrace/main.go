// Command swextrace runs one workload under the structured tracing
// subsystem (internal/trace) and either exports the run as a Chrome/
// Perfetto trace or prints the aggregate critical-path profile.
//
// Modes:
//
//	swextrace [flags] [preset]          write Chrome trace-event JSON (-o)
//	swextrace profile [flags] [preset]  print the critical-path profile
//
// The optional positional preset names a canned configuration:
//
//	fig2-point   WORKER set size 8, 10 iterations, 16 nodes, Dir_nH_5S_NB
//	table2       alias of fig2-point (the paper's Table 2 measurement run)
//
// Examples:
//
//	swextrace -o trace.json fig2-point
//	swextrace profile fig2-point
//	swextrace -app WATER -nodes 64 -protocol h5 -o water.json
//
// Traces are deterministic: the same configuration produces byte-identical
// output on every run. Open the JSON in https://ui.perfetto.dev or
// chrome://tracing; memory transactions are correlated across nodes as
// flows, messages appear as async spans on each source node's net track.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"swex"
	"swex/internal/machine"
	"swex/internal/proto"
	"swex/internal/trace"
)

var protocolsByFlag = map[string]func() proto.Spec{
	"h0":     proto.SoftwareOnly,
	"h1ack":  func() proto.Spec { return proto.OnePointer(proto.AckSW) },
	"h1lack": func() proto.Spec { return proto.OnePointer(proto.AckLACK) },
	"h1":     func() proto.Spec { return proto.OnePointer(proto.AckHW) },
	"h2":     func() proto.Spec { return proto.LimitLESS(2) },
	"h3":     func() proto.Spec { return proto.LimitLESS(3) },
	"h4":     func() proto.Spec { return proto.LimitLESS(4) },
	"h5":     func() proto.Spec { return proto.LimitLESS(5) },
	"full":   proto.FullMap,
	"dir1sw": proto.Dir1SW,
}

func main() {
	args := os.Args[1:]
	mode := "trace"
	if len(args) > 0 && (args[0] == "trace" || args[0] == "profile") {
		mode = args[0]
		args = args[1:]
	}

	fs := flag.NewFlagSet("swextrace "+mode, flag.ExitOnError)
	var (
		appName   = fs.String("app", "", "application: TSP AQ SMGRID EVOLVE MP3D WATER")
		workerK   = fs.Int("worker", 0, "run WORKER with this worker-set size instead of -app")
		iters     = fs.Int("iters", 10, "WORKER iterations")
		nodes     = fs.Int("nodes", 16, "machine size")
		protoStr  = fs.String("protocol", "h5", "h0 h1ack h1lack h1 h2..h5 full dir1sw")
		victim    = fs.Int("victim", 0, "victim cache lines (0 = off)")
		ways      = fs.Int("ways", 0, "cache associativity (0/1 = direct-mapped)")
		threads   = fs.Int("threads", 1, "hardware contexts per node")
		pifetch   = fs.Bool("pifetch", false, "perfect instruction fetch")
		software  = fs.String("software", "c", "protocol software: c or asm")
		batch     = fs.Bool("batch", false, "read-burst batching enhancement")
		parinv    = fs.Bool("parinv", false, "parallel invalidation enhancement")
		migratory = fs.Bool("migratory", false, "migratory-data adaptation")
		ring      = fs.Int("ring", 0, "keep only the last N events (0 = unbounded)")
		out       = fs.String("o", "", `output file ("-" or empty = stdout)`)
	)
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	// A positional preset overrides the workload flags.
	switch strings.ToLower(strings.Join(fs.Args(), " ")) {
	case "":
	case "fig2-point", "table2":
		*workerK, *iters, *nodes, *protoStr = 8, 10, 16, "h5"
	default:
		log.Fatalf("swextrace: unknown preset %q (want fig2-point or table2)", strings.Join(fs.Args(), " "))
	}

	mk, ok := protocolsByFlag[strings.ToLower(*protoStr)]
	if !ok {
		log.Fatalf("swextrace: unknown protocol %q", *protoStr)
	}

	var sink *trace.Collector
	if *ring > 0 {
		sink = trace.NewRing(*ring)
	} else {
		sink = trace.NewCollector()
	}

	cfg := machine.Config{
		Nodes:           *nodes,
		Spec:            mk(),
		VictimLines:     *victim,
		CacheWays:       *ways,
		PerfectIfetch:   *pifetch,
		BatchReads:      *batch,
		ParallelInv:     *parinv,
		MigratoryDetect: *migratory,
		ThreadsPerNode:  *threads,
		Trace:           sink,
	}
	if strings.ToLower(*software) == "asm" {
		cfg.Software = machine.TunedASM
	}

	var app swex.App
	switch {
	case *workerK > 0:
		app = swex.Worker(*workerK, *iters)
	case *appName != "":
		var err error
		app, err = swex.AppByName(strings.ToUpper(*appName))
		if err != nil {
			log.Fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "swextrace: need -app, -worker, or a preset")
		fs.Usage()
		os.Exit(2)
	}

	m, err := machine.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	inst := app.Setup(m)
	res, err := m.Run(inst.Thread, 0)
	if err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	events := sink.Events()
	switch mode {
	case "trace":
		if err := trace.WritePerfetto(w, events, cfg.Nodes); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "swextrace: %s on %d nodes, %s: %d cycles, %d events (%d collected)\n",
			app.Name, cfg.Nodes, cfg.Spec.Name, res.Time, sink.Total(), len(events))
	case "profile":
		bw := bufio.NewWriter(w)
		recs := trace.Attribute(events)
		prof := trace.Summarize(recs)
		fmt.Fprintf(bw, "%s on %d nodes, %s (%s software): %d cycles, %d transactions\n\n",
			app.Name, cfg.Nodes, cfg.Spec.Name, cfg.Software, res.Time, len(recs))
		fmt.Fprintf(bw, "%s\n", prof.PathTable())
		fmt.Fprintf(bw, "%s\n", prof.WorkTable())
		if err := bw.Flush(); err != nil {
			log.Fatal(err)
		}
	}
}
