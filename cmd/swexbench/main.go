// Command swexbench turns `go test -bench` output into a stable JSON
// document, for committing a benchmark baseline next to the code it
// measures. It reads the benchmark run from stdin, keeps every line that
// looks like a benchmark result, and writes the metrics keyed by benchmark
// name in sorted order, so diffs against the committed baseline stay
// readable.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | swexbench -o BENCH_baseline.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is the parsed metric set of one benchmark line.
type result struct {
	iterations uint64
	metrics    []metric
}

// metric is one "value unit" pair from a benchmark line.
type metric struct {
	value float64
	unit  string
}

func main() {
	out := flag.String("o", "", `output file ("-" or empty = stdout)`)
	flag.Parse()

	results := map[string]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, res, ok := parseLine(sc.Text())
		if ok {
			results[name] = res
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	w := os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := write(w, results); err != nil {
		log.Fatal(err)
	}
}

// parseLine recognizes a benchmark result line:
//
//	BenchmarkName-8   12   3456 ns/op   78 B/op   9 allocs/op
func parseLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	iters, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	res := result{iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		res.metrics = append(res.metrics, metric{value: v, unit: fields[i+1]})
	}
	if len(res.metrics) == 0 {
		return "", result{}, false
	}
	// Strip the -GOMAXPROCS suffix so the baseline is stable across
	// machines with different core counts.
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name, res, true
}

// write renders the results as deterministic, diff-friendly JSON: one
// benchmark per line, names sorted, metric units as keys.
func write(w *os.File, results map[string]result) error {
	bw := bufio.NewWriter(w)
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(bw, "{\n  \"benchmarks\": {\n")
	for i, name := range names {
		res := results[name]
		fmt.Fprintf(bw, "    %q: {\"iterations\": %d", name, res.iterations)
		for _, m := range res.metrics {
			fmt.Fprintf(bw, ", %q: %s", m.unit, strconv.FormatFloat(m.value, 'f', -1, 64))
		}
		fmt.Fprintf(bw, "}")
		if i+1 < len(names) {
			fmt.Fprintf(bw, ",")
		}
		fmt.Fprintf(bw, "\n")
	}
	fmt.Fprintf(bw, "  }\n}\n")
	return bw.Flush()
}
