// Command swex regenerates the tables and figures of Chaiken & Agarwal,
// "Software-Extended Coherent Shared Memory: Performance and Cost"
// (ISCA 1994) on the package's cycle-level simulator.
//
// Usage:
//
//	swex [-quick] <experiment> [<experiment>...]
//	swex [-quick] all
//
// Experiments: table1 table2 table3 fig2 fig3 fig4 fig5 fig6 scaling extrapolation tiers
// Ablations:   ablate-localbit ablate-software ablate-broadcast ablate-batch
//
// -quick runs reduced problem sizes (seconds instead of minutes) that
// preserve every qualitative shape.
//
// All experiments execute through one shared sweep runner (see
// internal/sweep): -workers bounds the worker pool (default: one per
// core), and -cache persists finished simulation points to a
// content-addressed result cache so re-runs and overlapping experiments
// skip completed work. Output is byte-identical at any worker count.
//
// -simworkers additionally runs each simulation on the conservative
// parallel engine (DESIGN.md §14) with that many shard workers. Results —
// and therefore cache entries — are byte-identical to serial runs at any
// value, so the knob only changes wall-clock time; it is deliberately not
// part of the cache key. The big single-machine exhibits (scaling,
// extrapolation) are where it pays off.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"swex"
)

type experiment struct {
	name    string
	caption string
	// run returns the rendered text and the raw data (for -json).
	run func(swex.Options) (string, any, error)
}

func experiments() []experiment {
	return []experiment{
		{"table1", "average software-extension latencies (C vs assembly)", func(o swex.Options) (string, any, error) {
			d, err := swex.Table1(o)
			if err != nil {
				return "", nil, err
			}
			return d.Table().String(), d, nil
		}},
		{"table2", "median handler cycle breakdown", func(o swex.Options) (string, any, error) {
			d, err := swex.Table2(o)
			if err != nil {
				return "", nil, err
			}
			return d.String(), d, nil
		}},
		{"table3", "application characteristics and sequential times", func(o swex.Options) (string, any, error) {
			rows, err := swex.Table3(o)
			if err != nil {
				return "", nil, err
			}
			return swex.Table3Table(rows).String(), rows, nil
		}},
		{"fig2", "WORKER protocol performance vs worker-set size", func(o swex.Options) (string, any, error) {
			d, err := swex.Figure2(o)
			if err != nil {
				return "", nil, err
			}
			return d.Figure().String(), d, nil
		}},
		{"fig3", "TSP cache-configuration study (instruction/data thrashing)", func(o swex.Options) (string, any, error) {
			d, err := swex.Figure3(o)
			if err != nil {
				return "", nil, err
			}
			return d.Table().String(), d, nil
		}},
		{"fig4", "application speedups across the protocol spectrum", func(o swex.Options) (string, any, error) {
			d, err := swex.Figure4(o)
			if err != nil {
				return "", nil, err
			}
			return d.Table().String(), d, nil
		}},
		{"fig5", "TSP on 256 nodes", func(o swex.Options) (string, any, error) {
			d, err := swex.Figure5(o)
			if err != nil {
				return "", nil, err
			}
			return d.Table().String(), d, nil
		}},
		{"fig6", "EVOLVE worker-set histogram", func(o swex.Options) (string, any, error) {
			d, err := swex.Figure6(o)
			if err != nil {
				return "", nil, err
			}
			return d.Table().String(), d, nil
		}},
		{"scaling", "TSP speedup vs machine size across the spectrum", func(o swex.Options) (string, any, error) {
			d, err := swex.ScalingStudy(o)
			if err != nil {
				return "", nil, err
			}
			return d.Figure().String(), d, nil
		}},
		{"extrapolation", "TSP at 256/512/1024 nodes, beyond Figure 5", func(o swex.Options) (string, any, error) {
			d, err := swex.Extrapolation(o)
			if err != nil {
				return "", nil, err
			}
			return d.Table().String(), d, nil
		}},
		{"tiers", "WORKER across memory-system families (flat, disaggregated, NVM, directoryless)", func(o swex.Options) (string, any, error) {
			d, err := swex.Tiers(o)
			if err != nil {
				return "", nil, err
			}
			return d.Table().String(), d, nil
		}},
		{"ablate-localbit", "one-bit local pointer on/off", ablation("ablation: local bit disabled", swex.AblateLocalBit)},
		{"ablate-software", "flexible C vs hand-tuned assembly handlers", ablation("ablation: hand-tuned assembly handlers", swex.AblateSoftware)},
		{"ablate-broadcast", "DirnH1SNB,LACK vs Dir1H1SB,LACK", ablation("ablation: broadcast instead of software directory", swex.AblateBroadcast)},
		{"ablate-batch", "read-burst batching enhancement", ablation("ablation: read-burst batching enabled", swex.AblateBatchReads)},
		{"ablate-parinv", "sequential vs parallel invalidation transmission", ablation("ablation: parallel invalidation transmission", swex.AblateParallelInv)},
		{"ablate-dataspec", "block-by-block protocol reconfiguration", ablation("ablation: EVOLVE fitness table promoted to full-map", swex.AblateDataSpecific)},
		{"ablate-migratory", "migratory-data adaptation (dynamic detection)", ablation("ablation: migratory-data read-for-ownership", swex.AblateMigratory)},
		{"ablate-assoc", "victim cache vs 2-way set-associative cache", ablation("ablation: associativity remedies for I/D thrashing", swex.AblateAssociativity)},
		{"ablate-cico", "Check-In/Check-Out program annotations", ablation("ablation: CICO check-in after reads", swex.AblateCICO)},
		{"ablate-mthread", "block multithreading (latency tolerance)", ablation("ablation: 4 hardware contexts per node", swex.AblateMultithreading)},
	}
}

func ablation(title string, fn func(swex.Options) ([]swex.AblationRow, error)) func(swex.Options) (string, any, error) {
	return func(o swex.Options) (string, any, error) {
		rows, err := fn(o)
		if err != nil {
			return "", nil, err
		}
		return swex.AblationTable(title, rows).String(), rows, nil
	}
}

func main() {
	quick := flag.Bool("quick", false, "run reduced problem sizes")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = one per core)")
	simWorkers := flag.Int("simworkers", 0, "parallel engine workers per simulation (0 or 1 = serial; output is byte-identical at any value)")
	cacheDir := flag.String("cache", "", "content-addressed result cache directory (empty = in-memory only)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}

	sweeper, err := swex.NewSweeper(swex.SweeperConfig{Workers: *workers, SimWorkers: *simWorkers, CacheDir: *cacheDir})
	if err != nil {
		fmt.Fprintf(os.Stderr, "swex: %v\n", err)
		os.Exit(1)
	}
	defer sweeper.Close()

	all := experiments()
	byName := map[string]experiment{}
	for _, e := range all {
		byName[e.name] = e
	}

	var selected []experiment
	if len(args) == 1 && args[0] == "all" {
		selected = all
	} else {
		for _, a := range args {
			e, ok := byName[a]
			if !ok {
				fmt.Fprintf(os.Stderr, "swex: unknown experiment %q\n\n", a)
				usage()
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := swex.Options{Quick: *quick, Sweep: sweeper}
	results := map[string]any{}
	for _, e := range selected {
		start := time.Now()
		out, data, err := e.run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swex: %s: %v\n", e.name, err)
			os.Exit(1)
		}
		if *asJSON {
			results[e.name] = data
			fmt.Fprintf(os.Stderr, "swex: %s done (%.1fs)\n", e.name, time.Since(start).Seconds())
			continue
		}
		fmt.Printf("== %s: %s (%.1fs)\n\n%s\n", e.name, e.caption, time.Since(start).Seconds(), out)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintf(os.Stderr, "swex: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "swex: %d simulation(s) executed on %d worker(s)\n",
		sweeper.TotalExecs(), sweeper.Workers())
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: swex [-quick] [-workers N] [-simworkers N] [-cache DIR] <experiment>... | all\n\nexperiments:\n")
	var names []string
	byName := map[string]string{}
	for _, e := range experiments() {
		names = append(names, e.name)
		byName[e.name] = e.caption
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %-16s %s\n", n, byName[n])
	}
}
