// Command swexd runs the distributed sweep service (see internal/swexd):
// a coordinator that leases experiment jobs to workers over RPC and
// serves results from one shared content-addressed cache, plus the
// worker, submit, and status clients.
//
// Usage:
//
//	swexd serve  -addr :7009 [-cache DIR] [-lease 10s] [-retries N] [-cycle-budget N]
//	swexd worker -coordinator host:7009 [-name NAME] [-slots N] [-poll D]
//	swexd submit -coordinator http://host:7009 [-quick] [-salt S] [-quiet] <matrix>... | all
//	swexd status -coordinator http://host:7009 [-json] [sweep-id]
//
// Matrices: table1 table2 table3 fig2 fig3 fig4 fig5 fig6 scaling
//
// serve hosts the coordinator: the HTTP/JSON front end (POST /sweeps,
// GET /sweeps/{id}, streaming NDJSON at /sweeps/{id}/events, /workers,
// /vars) and the workers' RPC endpoint share one listener. worker
// attaches an execution worker; run any number, anywhere the coordinator
// is reachable. submit renders the named exhibit matrices through the
// coordinator — output is byte-identical to a local swexsweep run.
// status with no argument lists sweeps, workers, and counters; with a
// sweep ID it prints that sweep's per-job state. -json switches either
// form to newline-delimited JSON (one record per sweep or per job).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"time"

	"swex"
	"swex/internal/sim"
	"swex/internal/swexd"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "worker":
		err = worker(os.Args[2:])
	case "submit":
		err = submit(os.Args[2:])
	case "status":
		err = status(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "swexd: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "swexd: %v\n", err)
		os.Exit(1)
	}
}

// serve hosts the coordinator until interrupted.
func serve(args []string) error {
	fs := flag.NewFlagSet("swexd serve", flag.ExitOnError)
	addr := fs.String("addr", ":7009", "listen address")
	cacheDir := fs.String("cache", "", "shared content-addressed result cache directory (empty = in-memory only)")
	lease := fs.Duration("lease", 10*time.Second, "job lease term; a worker silent this long forfeits its job")
	retries := fs.Int("retries", 0, "worker-reported failures a job tolerates before it is marked failed")
	cycleBudget := fs.Int64("cycle-budget", 0, "default per-job simulated-cycle limit (0 = unbounded)")
	fs.Parse(args)

	coord, err := swexd.NewCoordinator(swexd.Config{
		CacheDir:    *cacheDir,
		LeaseTerm:   *lease,
		JobRetries:  *retries,
		CycleBudget: sim.Cycle(*cycleBudget),
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	srv := &http.Server{Addr: *addr, Handler: coord.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	fmt.Fprintf(os.Stderr, "swexd: coordinator listening on %s (cache %q, lease %v)\n", *addr, *cacheDir, *lease)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		return err
	}
	return nil
}

// worker attaches one execution worker to a coordinator until
// interrupted.
func worker(args []string) error {
	fs := flag.NewFlagSet("swexd worker", flag.ExitOnError)
	coordinator := fs.String("coordinator", "localhost:7009", "coordinator host:port")
	name := fs.String("name", "", "worker name for the /workers listing (default host:pid)")
	slots := fs.Int("slots", 0, "concurrent job executions (0 = one per core is NOT implied; 0 means 1)")
	poll := fs.Duration("poll", 0, "wait between empty lease replies (0 = coordinator-suggested)")
	fs.Parse(args)

	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	w := swexd.NewWorker(swexd.WorkerConfig{
		Coordinator: *coordinator,
		Name:        *name,
		Slots:       *slots,
		Poll:        *poll,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	fmt.Fprintf(os.Stderr, "swexd: worker %q serving %s\n", *name, *coordinator)
	return w.Run(ctx)
}

// submit renders exhibit matrices through a coordinator.
func submit(args []string) error {
	fs := flag.NewFlagSet("swexd submit", flag.ExitOnError)
	coordinator := fs.String("coordinator", "http://localhost:7009", "coordinator base URL")
	quick := fs.Bool("quick", false, "run reduced problem sizes")
	salt := fs.String("salt", "", "extra key material mixed into every job hash")
	quiet := fs.Bool("quiet", false, "suppress the per-matrix progress line")
	fs.Parse(args)

	selected, err := selectMatrices(fs.Args())
	if err != nil {
		return err
	}
	client := &swexd.Client{Base: *coordinator, Salt: *salt}
	opts := swex.Options{Quick: *quick, Sweep: client}
	for _, m := range selected {
		start := time.Now()
		out, err := m.Render(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", m.Name, err)
		}
		fmt.Printf("== %s: %s\n\n%s\n", m.Name, m.Caption, out)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "swexd: %s: %d job(s), %.1fs via %s\n",
				m.Name, len(m.Jobs(opts)), time.Since(start).Seconds(), *coordinator)
		}
	}
	return nil
}

// status prints a coordinator's state: every sweep, worker, and counter,
// or one sweep's per-job detail.
func status(args []string) error {
	fs := flag.NewFlagSet("swexd status", flag.ExitOnError)
	coordinator := fs.String("coordinator", "http://localhost:7009", "coordinator base URL")
	jsonOut := fs.Bool("json", false, "emit newline-delimited JSON records instead of the human-readable report")
	fs.Parse(args)

	ctx := context.Background()
	client := &swexd.Client{Base: *coordinator}
	if fs.NArg() > 0 {
		st, err := client.Status(ctx, fs.Arg(0))
		if err != nil {
			return err
		}
		if *jsonOut {
			return swexd.WriteStatusJSON(os.Stdout, st)
		}
		fmt.Printf("sweep %s: %d job(s), done=%v\n", st.ID, st.Total, st.Done)
		for _, j := range st.Jobs {
			line := fmt.Sprintf("  [%3d] %-7s %s", j.Index, j.State, j.Desc)
			if j.Worker != "" {
				line += fmt.Sprintf(" (worker %s)", j.Worker)
			}
			if j.Retries > 0 {
				line += fmt.Sprintf(" (retries %d)", j.Retries)
			}
			fmt.Println(line)
			if j.Err != "" {
				fmt.Printf("        %s\n", j.Err)
			}
		}
		return nil
	}

	sweeps, err := client.SweepList(ctx)
	if err != nil {
		return err
	}
	if *jsonOut {
		return swexd.WriteSweepListJSON(os.Stdout, sweeps)
	}
	fmt.Printf("%d sweep(s)\n", len(sweeps))
	for _, s := range sweeps {
		fmt.Printf("  %s: %d job(s), done=%v, counts=%v\n", s.ID, s.Total, s.Done, s.Counts)
	}
	workers, err := client.Workers(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%d worker(s)\n", len(workers))
	for _, w := range workers {
		fmt.Printf("  %s %q: %d active, %d completed, %d failed, last seen %s\n",
			w.ID, w.Name, len(w.Active), w.Completed, w.Failed, w.LastSeen)
	}
	vars, err := client.Vars(ctx)
	if err != nil {
		return err
	}
	fmt.Println("counters")
	keys := make([]string, 0, len(vars))
	for k := range vars {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s = %d\n", k, vars[k])
	}
	return nil
}

// selectMatrices resolves the argument list ("all" or matrix names).
func selectMatrices(args []string) ([]swex.Matrix, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("no matrices named (want matrix names or \"all\")")
	}
	if len(args) == 1 && args[0] == "all" {
		return swex.Matrices(), nil
	}
	var selected []swex.Matrix
	for _, a := range args {
		m, ok := swex.MatrixByName(a)
		if !ok {
			return nil, fmt.Errorf("unknown matrix %q", a)
		}
		selected = append(selected, m)
	}
	return selected, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: swexd <subcommand> [flags]

subcommands:
  serve   host the coordinator (HTTP front end + worker RPC)
  worker  attach an execution worker to a coordinator
  submit  render exhibit matrices through a coordinator
  status  print a coordinator's sweeps, workers, and counters

matrices (for submit):
`)
	for _, m := range swex.Matrices() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", m.Name, m.Caption)
	}
}
