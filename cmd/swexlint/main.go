// Command swexlint runs the repository's static-analysis suite: the
// determinism, exhaustive-enum, cycle-math, panic-hygiene, exporteddoc,
// and hotalloc rules that back the simulator's reproducibility and
// allocation contracts (see internal/lint and the "Determinism contract"
// section of DESIGN.md).
//
// Usage:
//
//	swexlint [-analyzers list] [-json] [-write-baseline] [packages]
//
// Packages are module-relative directories ("./internal/dir") or the
// recursive pattern "./...". With no arguments the whole module is
// analyzed. The exit status is 0 when the tree is clean, 1 when any
// diagnostic is reported, and 2 on a usage or load error.
//
// The hotalloc analyzer ratchets against lint-baseline.json at the module
// root: sites within the baselined counts pass, new sites fail, and
// -write-baseline regenerates the file from the current tree (including
// the staleness pass, so the committed counts can only shrink).
// -json emits diagnostics as one JSON object per line — including
// suppressed ones, with their allow-state — for CI annotation tooling.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"swex/internal/lint"
)

func main() {
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON records (one object per line)")
	writeBaseline := flag.Bool("write-baseline", false, "regenerate the hotalloc baseline from the current tree")
	baselinePath := flag.String("baseline", "", "hotalloc baseline file (default: lint-baseline.json at the module root)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: swexlint [-analyzers list] [-json] [-write-baseline] [./... | ./pkg/dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	as, err := lint.AnalyzersByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "swexlint:", err)
		os.Exit(2)
	}
	root, modPath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swexlint:", err)
		os.Exit(2)
	}
	loader := lint.NewLoader(root, modPath)

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		loaded, err := load(loader, cwd, pat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swexlint:", err)
			os.Exit(2)
		}
		pkgs = append(pkgs, loaded...)
	}

	cfg := lint.DefaultConfig()
	bpath := *baselinePath
	if bpath == "" {
		bpath = filepath.Join(root, lint.BaselineFile)
	}

	if *writeBaseline {
		// The baseline is whole-module by definition; scan everything
		// regardless of the package arguments.
		all, err := loader.LoadModule()
		if err != nil {
			fmt.Fprintln(os.Stderr, "swexlint:", err)
			os.Exit(2)
		}
		b := lint.ComputeBaseline(cfg, all)
		if err := b.WriteFile(bpath); err != nil {
			fmt.Fprintln(os.Stderr, "swexlint:", err)
			os.Exit(2)
		}
		fmt.Printf("swexlint: wrote %d hot-path allocation site(s) to %s\n", b.Total(), bpath)
		return
	}

	cfg.Baseline, err = lint.LoadBaseline(bpath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swexlint:", err)
		os.Exit(2)
	}

	diags := lint.RunAll(cfg, pkgs, as)
	failures := 0
	for _, d := range diags {
		if !d.Suppressed {
			failures++
		}
	}
	rel := func(name string) string {
		if r, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}
	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, cwd, diags); err != nil {
			fmt.Fprintln(os.Stderr, "swexlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "swexlint: %d violation(s)\n", failures)
		os.Exit(1)
	}
}

// load resolves one command-line pattern to packages.
func load(loader *lint.Loader, cwd, pat string) ([]*lint.Package, error) {
	if pat == "./..." || pat == "..." {
		return loader.LoadModule()
	}
	dir := pat
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(cwd, dir)
	}
	rel, err := filepath.Rel(loader.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("package %s is outside module %s", pat, loader.ModulePath)
	}
	imp := loader.ModulePath
	if rel != "." {
		imp = loader.ModulePath + "/" + filepath.ToSlash(rel)
	}
	p, err := loader.Load(dir, imp)
	if err != nil {
		return nil, err
	}
	return []*lint.Package{p}, nil
}
