// Command swexlint runs the repository's static-analysis suite: the
// determinism, exhaustive-enum, cycle-math, and panic-hygiene rules that
// back the simulator's reproducibility contract (see internal/lint and the
// "Determinism contract" section of DESIGN.md).
//
// Usage:
//
//	swexlint [-analyzers determinism,exhaustive-enum,cycle-math,panic-hygiene] [packages]
//
// Packages are module-relative directories ("./internal/dir") or the
// recursive pattern "./...". With no arguments the whole module is
// analyzed. The exit status is 0 when the tree is clean, 1 when any
// diagnostic is reported, and 2 on a usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"swex/internal/lint"
)

func main() {
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: swexlint [-analyzers list] [./... | ./pkg/dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	as, err := lint.AnalyzersByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "swexlint:", err)
		os.Exit(2)
	}
	root, modPath, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swexlint:", err)
		os.Exit(2)
	}
	loader := lint.NewLoader(root, modPath)

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var pkgs []*lint.Package
	for _, pat := range patterns {
		loaded, err := load(loader, cwd, pat)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swexlint:", err)
			os.Exit(2)
		}
		pkgs = append(pkgs, loaded...)
	}

	diags := lint.Run(lint.DefaultConfig(), pkgs, as)
	for _, d := range diags {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(cwd, rel); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "swexlint: %d violation(s)\n", len(diags))
		os.Exit(1)
	}
}

// load resolves one command-line pattern to packages.
func load(loader *lint.Loader, cwd, pat string) ([]*lint.Package, error) {
	if pat == "./..." || pat == "..." {
		return loader.LoadModule()
	}
	dir := pat
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(cwd, dir)
	}
	rel, err := filepath.Rel(loader.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("package %s is outside module %s", pat, loader.ModulePath)
	}
	imp := loader.ModulePath
	if rel != "." {
		imp = loader.ModulePath + "/" + filepath.ToSlash(rel)
	}
	p, err := loader.Load(dir, imp)
	if err != nil {
		return nil, err
	}
	return []*lint.Package{p}, nil
}
