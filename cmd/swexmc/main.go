// Command swexmc exhaustively model-checks the coherence protocol
// spectrum. It explores every interleaving of a small action alphabet
// (per-node read, write, evict, CICO check-in/check-out, and optionally
// watch) on a small machine built from the real simulator stack,
// asserting the coherence invariants — single writer, identical readers,
// directory–cache agreement, quiescence, no lost wakeups — on every
// reachable state.
//
// Usage:
//
//	swexmc [-spec all] [-nodes 2] [-blocks 1] [-ops 4] [-dfs] [-por]
//	       [-watch] [-configure spec,spec,...] [-mig] [-batch]
//	       [-max-states N] [-drop-inv N]
//
// With -spec all (the default) every protocol in the paper's spectrum is
// checked, plus the Dir1SW cooperative-shared-memory variant. -watch adds
// the producer–consumer pair to the alphabet. -configure gives block i
// the i-th named protocol as a per-block override (an empty element keeps
// the machine default), checking a mixed-spec machine. -por enables
// sleep-set partial-order reduction, which preserves every verdict and
// every quiescent state while pruning equivalent interleavings; the
// pruned-edge count is printed per run. -drop-inv N seeds a protocol bug
// — the Nth invalidation message is silently dropped — and the checker
// finds the shortest interleaving that turns the lost message into an
// invariant violation, demonstrating the counterexample machinery.
//
// Exit status: 0 when every checked protocol satisfies the invariants,
// 1 when a violation was found (the counterexample is printed), 2 on
// usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"swex/internal/mc"
	"swex/internal/proto"
)

func main() {
	spec := flag.String("spec", "all", "protocol name to check, or \"all\" for the full spectrum")
	nodes := flag.Int("nodes", 2, "machine size (2..8; exhaustive runs want 2 or 3)")
	blocks := flag.Int("blocks", 1, "tracked blocks (1..4), block i homed on node i mod nodes")
	ops := flag.Int("ops", 4, "operation budget per trace (exploration depth)")
	maxStates := flag.Int("max-states", 0, "visited-set bound (0 = package default)")
	dfs := flag.Bool("dfs", false, "explore depth-first instead of breadth-first")
	por := flag.Bool("por", false, "enable sleep-set partial-order reduction (BFS only)")
	watch := flag.Bool("watch", false, "add the watch action (producer-consumer pairs) to the alphabet")
	configure := flag.String("configure", "", "comma-separated per-block protocol overrides; empty element keeps the machine default")
	mig := flag.Bool("mig", false, "enable migratory-data detection on the checked machine")
	batch := flag.Bool("batch", false, "enable read-burst batching on the checked machine")
	dropInv := flag.Int("drop-inv", 0, "seed a bug: silently drop the Nth invalidation message")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "swexmc: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	specs, err := resolveSpecs(*spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swexmc: %v\n", err)
		os.Exit(2)
	}
	overrides, err := resolveOverrides(*configure)
	if err != nil {
		fmt.Fprintf(os.Stderr, "swexmc: %v\n", err)
		os.Exit(2)
	}

	for _, s := range specs {
		cfg := mc.Config{
			Spec:            s,
			Nodes:           *nodes,
			Blocks:          *blocks,
			MaxOps:          *ops,
			MaxStates:       *maxStates,
			DFS:             *dfs,
			POR:             *por,
			Watch:           *watch,
			Overrides:       overrides,
			MigratoryDetect: *mig,
			BatchReads:      *batch,
		}
		if *dropInv > 0 {
			cfg.Fault = dropNthInv(*dropInv)
		}
		res, err := mc.Check(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swexmc: %s: %v\n", s.Name, err)
			os.Exit(2)
		}
		bounded := ""
		if res.Bounded {
			bounded = " (bounded: state space not exhausted)"
		}
		reduced := ""
		if *por {
			reduced = fmt.Sprintf("  %7d slept", res.SleptTransitions)
		}
		fmt.Printf("%-14s %8d states %9d transitions  depth %3d  %6d quiescent%s%s\n",
			s.Name, res.States, res.Transitions, res.MaxDepth, res.Quiescent, reduced, bounded)
		if res.Violation != nil {
			fmt.Printf("VIOLATION %s\n", res.Violation)
			text, err := mc.Explain(cfg, res.Violation)
			if err != nil {
				fmt.Fprintf(os.Stderr, "swexmc: replaying counterexample: %v\n", err)
				os.Exit(2)
			}
			fmt.Print(text)
			os.Exit(1)
		}
	}
}

// resolveSpecs maps the -spec flag to the protocols to check: "all" means
// the paper's spectrum plus Dir1SW; anything else must name one protocol
// (matched case-insensitively against Spec.Name).
func resolveSpecs(name string) ([]proto.Spec, error) {
	known := append(proto.Spectrum(), proto.Dir1SW())
	if name == "all" {
		return known, nil
	}
	var names []string
	for _, s := range known {
		if strings.EqualFold(s.Name, name) {
			return []proto.Spec{s}, nil
		}
		names = append(names, s.Name)
	}
	return nil, fmt.Errorf("unknown protocol %q; known: %s, all", name, strings.Join(names, ", "))
}

// resolveOverrides parses the -configure flag into per-block protocol
// overrides: element i applies to block i; an empty element keeps the
// machine default (encoded as a zero Spec, which Config.blockSpec skips).
func resolveOverrides(arg string) ([]proto.Spec, error) {
	if arg == "" {
		return nil, nil
	}
	var out []proto.Spec
	for _, name := range strings.Split(arg, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			out = append(out, proto.Spec{})
			continue
		}
		specs, err := resolveSpecs(name)
		if err != nil {
			return nil, fmt.Errorf("-configure: %v", err)
		}
		if len(specs) != 1 {
			return nil, fmt.Errorf("-configure: %q names %d protocols; overrides need exactly one each", name, len(specs))
		}
		out = append(out, specs[0])
	}
	return out, nil
}

// dropNthInv builds a per-world fault filter that silently drops the Nth
// invalidation message injected into the network.
func dropNthInv(n int) func() func(proto.Msg) bool {
	return func() func(proto.Msg) bool {
		seen := 0
		return func(m proto.Msg) bool {
			if m.Kind != proto.MsgINV {
				return false
			}
			seen++
			return seen == n
		}
	}
}
