package swex

// Sweep-level regression tests: the parallel orchestrator must be
// invisible in experiment output (byte-identical reports at any worker
// count, cold or warm cache), and the shared job cache must deduplicate
// simulation points that several experiments have in common.

import (
	"testing"

	"swex/internal/sweep"
)

// figure2Report renders Figure 2 in quick mode through the given sweeper.
func figure2Report(t *testing.T, s *Sweeper) string {
	t.Helper()
	d, err := Figure2(Options{Quick: true, Sweep: s})
	if err != nil {
		t.Fatal(err)
	}
	return d.Figure().String()
}

// TestSweepOutputDeterministic is the satellite determinism check: the
// Figure 2 sweep must render byte-identically serial, parallel, and from a
// warm cache. (Also wired into `make check` as sweep-smoke.)
func TestSweepOutputDeterministic(t *testing.T) {
	serialRunner := sweep.MustNewRunner(sweep.Config{Workers: 1})
	defer serialRunner.Close()
	serial := figure2Report(t, serialRunner)

	for _, workers := range []int{2, 4, 8} {
		r := sweep.MustNewRunner(sweep.Config{Workers: workers})
		if got := figure2Report(t, r); got != serial {
			t.Errorf("figure 2 report differs at %d workers:\n--- serial ---\n%s\n--- %d workers ---\n%s",
				workers, serial, workers, got)
		}
		r.Close()
	}

	// Warm cache: a second runner over the same directory replays every
	// point from disk — zero simulations — and still renders the same bytes.
	dir := t.TempDir()
	cold, err := NewSweeper(SweeperConfig{Workers: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := figure2Report(t, cold); got != serial {
		t.Errorf("cold cached report differs from serial:\n%s", got)
	}
	cold.Close()

	warm, err := NewSweeper(SweeperConfig{Workers: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if got := figure2Report(t, warm); got != serial {
		t.Errorf("warm cached report differs from serial:\n%s", got)
	}
	if got := warm.TotalExecs(); got != 0 {
		t.Errorf("warm cache run executed %d simulations, want 0", got)
	}
}

// TestSharedBaselineComputedOnce is the dedup regression test: Table 3 and
// Figure 4 both need each application's sequential baseline; a shared
// runner must simulate each such point exactly once.
func TestSharedBaselineComputedOnce(t *testing.T) {
	r := sweep.MustNewRunner(sweep.Config{})
	defer r.Close()
	o := Options{Quick: true, Sweep: r}

	if _, err := Table3(o); err != nil {
		t.Fatal(err)
	}
	baselineExecs := r.TotalExecs()
	baselines := Table3Jobs(o)
	if baselineExecs != len(baselines) {
		t.Fatalf("table 3 executed %d simulations for %d baselines", baselineExecs, len(baselines))
	}

	if _, err := Figure4(o); err != nil {
		t.Fatal(err)
	}
	for i, j := range baselines {
		if got := r.ExecCount(j); got != 1 {
			t.Errorf("baseline %d (%s) executed %d times across Table 3 + Figure 4, want 1", i, j, got)
		}
	}
	// Figure 4 must only have paid for its parallel points.
	want := baselineExecs + len(Figure4Jobs(o)) - len(baselines)
	if got := r.TotalExecs(); got != want {
		t.Errorf("Table 3 + Figure 4 executed %d simulations, want %d (shared baselines computed once)", got, want)
	}
}
