package swex

// Sweep orchestration benchmarks: the quick-mode Figure 2 matrix (42
// simulations) serial, on a 4-worker pool, and replayed from a warm
// content-addressed cache. Committed baseline: BENCH_sweep.json
// (regenerate with `make bench-sweep`). On a single-core container the
// serial and parallel variants coincide — simulations are pure CPU and
// cannot overlap without real cores; BenchmarkPoolOverlap* in
// internal/sweep measures the pool's overlap itself. The warm variant
// executes zero simulations.

import (
	"testing"

	"swex/internal/sweep"
)

func benchFig2Sweep(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		r := sweep.MustNewRunner(sweep.Config{Workers: workers})
		if _, err := Figure2(Options{Quick: true, Sweep: r}); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

func BenchmarkSweepFig2Serial(b *testing.B)    { benchFig2Sweep(b, 1) }
func BenchmarkSweepFig2Parallel4(b *testing.B) { benchFig2Sweep(b, 4) }

func BenchmarkSweepFig2Warm(b *testing.B) {
	dir := b.TempDir()
	warmup, err := NewSweeper(SweeperConfig{CacheDir: dir})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := Figure2(Options{Quick: true, Sweep: warmup}); err != nil {
		b.Fatal(err)
	}
	warmup.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewSweeper(SweeperConfig{Workers: 4, CacheDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Figure2(Options{Quick: true, Sweep: r}); err != nil {
			b.Fatal(err)
		}
		if got := r.TotalExecs(); got != 0 {
			b.Fatalf("warm run executed %d simulations", got)
		}
		r.Close()
	}
}
