package swex

// Memory-tier overhead benchmarks: the same WORKER instance on each
// memory-system family, plus the directoryless machine. The flat run is
// the cost of the tier hook when no tier is installed — one nil check per
// directory-side memory access — so comparing its wall time and simulated
// cycles against the pre-memtier baselines shows the hook is free when
// disabled. Regenerate BENCH_memtier.json with `make bench-memtier`.

import "testing"

func benchWorker(b *testing.B, spec Protocol, tier MemTier) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		m, err := NewMachine(MachineConfig{Nodes: 16, Spec: spec, MemTier: tier})
		if err != nil {
			b.Fatal(err)
		}
		inst := Worker(8, 10).Setup(m)
		res, err := m.Run(inst.Thread, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Time), "sim-cycles")
	}
}

// BenchmarkMemTierFlat is the disabled-hook baseline: a flat machine pays
// one branch per directory-side access and must match the pre-memtier
// cycle counts exactly (the simulated-cycles metric is the proof).
func BenchmarkMemTierFlat(b *testing.B) {
	benchWorker(b, FullMap(), MemTier{})
}

// BenchmarkMemTierDisaggregated runs the far-memory family: every
// directory-side access crosses the second interconnect tier.
func BenchmarkMemTierDisaggregated(b *testing.B) {
	benchWorker(b, FullMap(), DisaggregatedMemory())
}

// BenchmarkMemTierNVM runs the hybrid DRAM/NVM family with hot-block
// promotion.
func BenchmarkMemTierNVM(b *testing.B) {
	benchWorker(b, FullMap(), TieredMemory())
}

// BenchmarkDirectoryless runs the directoryless shared-LLC machine, where
// every access is a direct home access.
func BenchmarkDirectoryless(b *testing.B) {
	benchWorker(b, Directoryless(), MemTier{})
}
