module swex

go 1.22
