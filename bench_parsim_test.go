package swex

// Parallel-engine benchmarks on real simulation work: the 256-node slice
// of the scaling study (all four protocol spectrum points at 256 nodes,
// the biggest machines any committed exhibit simulates) run serially and
// on four engine workers. Committed baseline: BENCH_parsim.json
// (regenerate with `make bench-parsim`). Results are byte-identical
// between the variants by construction — only wall-clock differs. On a
// single-core container the 4-worker variant is *slower* than serial
// (the window barriers add work and nothing can overlap);
// BenchmarkParsimOverlap* in internal/sim measures the window
// scheduler's overlap itself, which is the honest speedup measurement
// there, and the multi-core speedup figures live in EXPERIMENTS.md.

import (
	"context"
	"testing"

	"swex/internal/machine"
	"swex/internal/proto"
	"swex/internal/sweep"
)

// scaling256Jobs is the 256-node slice of the scaling study's matrix
// (16-node machines in -short).
func scaling256Jobs() []sweep.Job {
	nodes := 256
	if testing.Short() {
		nodes = 16
	}
	var jobs []sweep.Job
	for _, spec := range []proto.Spec{
		proto.SoftwareOnly(),
		proto.OnePointer(proto.AckSW),
		proto.LimitLESS(5),
		proto.FullMap(),
	} {
		jobs = append(jobs, sweep.AppJob("TSP", testing.Short(), machine.Config{
			Nodes: nodes, Spec: spec, VictimLines: 8,
		}))
	}
	return jobs
}

func benchParsimScaling(b *testing.B, simWorkers int) {
	jobs := scaling256Jobs()
	for i := 0; i < b.N; i++ {
		r := sweep.MustNewRunner(sweep.Config{Workers: 1, SimWorkers: simWorkers})
		if _, err := r.Run(context.Background(), jobs); err != nil {
			b.Fatal(err)
		}
		r.Close()
	}
}

func BenchmarkParsimScaling256Serial(b *testing.B)   { benchParsimScaling(b, 1) }
func BenchmarkParsimScaling256Workers4(b *testing.B) { benchParsimScaling(b, 4) }
