// Quickstart: build a simulated 16-node machine with a LimitLESS
// five-pointer directory, run the WORKER stress benchmark on it, and print
// what the memory system did.
package main

import (
	"fmt"
	"log"

	"swex"
)

func main() {
	// A 16-node machine running Dir_nH_5S_NB: five hardware directory
	// pointers per memory block, software extension beyond that.
	m, err := swex.NewMachine(swex.MachineConfig{
		Nodes: 16,
		Spec:  swex.LimitLESS(5),
	})
	if err != nil {
		log.Fatal(err)
	}

	// WORKER builds memory blocks with an exact worker-set size (8 here:
	// beyond the hardware pointers, so the software extension runs) and
	// performs read/barrier/write/barrier iterations.
	app := swex.Worker(8, 10)
	inst := app.Setup(m)
	res, err := m.Run(inst.Thread, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("protocol:            %s\n", m.Cfg.Spec.Name)
	fmt.Printf("run time:            %d cycles (%.3f ms at 33 MHz)\n",
		res.Time, 1000*res.Time.Seconds())
	fmt.Printf("network messages:    %d\n", res.Messages)
	fmt.Printf("software traps:      %d\n", res.Traps)
	fmt.Printf("handler cycles:      %d\n", res.HandlerCycles)
	fmt.Printf("busy retries:        %d\n", res.BusyRetries)

	if res.Ledger != nil {
		fmt.Printf("mean read handler:   %.0f cycles\n", res.Ledger.Mean(swex.ReadHandler, -1))
	}

	// The same run under the full-map directory for comparison: no traps.
	fm, err := swex.NewMachine(swex.MachineConfig{Nodes: 16, Spec: swex.FullMap()})
	if err != nil {
		log.Fatal(err)
	}
	inst = app.Setup(fm)
	fres, err := fm.Run(inst.Thread, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull-map run time:   %d cycles\n", fres.Time)
	fmt.Printf("H5 / full-map ratio: %.2f\n", float64(res.Time)/float64(fres.Time))
}
