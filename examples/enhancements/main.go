// Enhancements: the paper's Section 7 argues that "the true power of the
// software-extension approach lies in deviating from the basic
// implementation". This example demonstrates three of the implemented
// enhancements on the access patterns they target, printing
// baseline-versus-enhanced run times:
//
//  1. migratory-data adaptation on a token passed read-modify-write
//     around the machine;
//  2. Check-In/Check-Out annotations on the same token (the programmer
//     does statically what the detector does dynamically);
//  3. block-by-block protocol reconfiguration: a hot, widely-read table
//     promoted to full-map on an otherwise two-pointer machine.
package main

import (
	"fmt"
	"log"

	"swex"
)

const laps = 6

// tokenRing builds the canonical migratory workload: each node, in turn,
// reads the token block, computes, and writes it back. cico selects the
// annotated variant (check-out before, check-in after).
func tokenRing(cico bool) swex.App {
	return swex.App{
		Name: "token-ring",
		Setup: func(m *swex.Machine) swex.AppInstance {
			P := m.Cfg.Nodes
			token := m.Mem.AllocOn(0, swex.WordsPerBlock)
			turn := m.Mem.AllocOn(0, swex.WordsPerBlock)
			thread := func(env *swex.Env) {
				id := uint64(env.ID())
				for lap := 0; lap < laps; lap++ {
					myTurn := uint64(lap)*uint64(P) + id
					for {
						cur := env.Read(turn)
						if cur == myTurn {
							break
						}
						env.WaitChange(turn, cur)
					}
					if cico {
						env.CheckOut(token)
					}
					v := env.Read(token)
					env.Compute(200)
					env.Write(token, v+1)
					if cico {
						env.CheckIn(token)
					}
					env.Write(turn, myTurn+1)
				}
			}
			return swex.AppInstance{Thread: thread}
		},
	}
}

// hotTable builds the data-specific workload: every node repeatedly reads
// a 64-block shared table that overflows a two-pointer directory.
func hotTable() swex.App {
	return swex.App{
		Name: "hot-table",
		Setup: func(m *swex.Machine) swex.AppInstance {
			const blocks = 64
			table := make([]swex.Addr, blocks)
			for i := range table {
				table[i] = m.Mem.AllocOn(swex.NodeID(i%m.Cfg.Nodes), swex.WordsPerBlock)
			}
			thread := func(env *swex.Env) {
				for pass := 0; pass < 4; pass++ {
					for _, a := range table {
						env.Read(a)
						env.Compute(20)
					}
				}
			}
			return swex.AppInstance{
				Thread:  thread,
				Regions: map[string][]swex.Addr{"table": table},
			}
		},
	}
}

func run(app swex.App, cfg swex.MachineConfig, configure func(*swex.Machine, swex.AppInstance)) swex.Cycle {
	m, err := swex.NewMachine(cfg)
	if err != nil {
		log.Fatal(err)
	}
	inst := app.Setup(m)
	if configure != nil {
		configure(m, inst)
	}
	res, err := m.Run(inst.Thread, 0)
	if err != nil {
		log.Fatal(err)
	}
	return res.Time
}

func main() {
	const nodes = 16
	h5 := swex.MachineConfig{Nodes: nodes, Spec: swex.LimitLESS(5)}

	fmt.Println("Section 7 enhancements on their target access patterns")
	fmt.Println()

	// 1. Migratory detection.
	base := run(tokenRing(false), h5, nil)
	mig := h5
	mig.MigratoryDetect = true
	adapted := run(tokenRing(false), mig, nil)
	fmt.Printf("token ring, dynamic migratory detection: %7d -> %7d cycles (%+.1f%%)\n",
		base, adapted, 100*(float64(adapted)/float64(base)-1))

	// 2. CICO annotations: the static version of the same idea.
	annotated := run(tokenRing(true), h5, nil)
	fmt.Printf("token ring, CICO annotations:            %7d -> %7d cycles (%+.1f%%)\n",
		base, annotated, 100*(float64(annotated)/float64(base)-1))

	// 3. Data-specific protocol selection.
	h2 := swex.MachineConfig{Nodes: nodes, Spec: swex.LimitLESS(2)}
	tableBase := run(hotTable(), h2, nil)
	tableFull := run(hotTable(), h2, func(m *swex.Machine, inst swex.AppInstance) {
		for _, a := range inst.Regions["table"] {
			if err := m.ConfigureBlock(swex.Block(a/swex.WordsPerBlock), swex.FullMap()); err != nil {
				log.Fatal(err)
			}
		}
	})
	fmt.Printf("hot table on H2, blocks -> full-map:     %7d -> %7d cycles (%+.1f%%)\n",
		tableBase, tableFull, 100*(float64(tableFull)/float64(tableBase)-1))
}
