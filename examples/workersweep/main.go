// Workersweep: regenerate the Figure 2 data series — WORKER run-time
// ratios against the full-map directory as the worker-set size grows —
// using only the public API.
package main

import (
	"flag"
	"fmt"
	"log"

	"swex"
)

func main() {
	nodes := flag.Int("nodes", 16, "machine size")
	iters := flag.Int("iters", 10, "WORKER iterations")
	flag.Parse()

	protocols := []swex.Protocol{
		swex.SoftwareOnly(),
		swex.OnePointer(swex.AckSW),
		swex.OnePointer(swex.AckLACK),
		swex.OnePointer(swex.AckHW),
		swex.LimitLESS(2),
		swex.LimitLESS(5),
	}

	run := func(k int, p swex.Protocol) swex.Cycle {
		m, err := swex.NewMachine(swex.MachineConfig{Nodes: *nodes, Spec: p})
		if err != nil {
			log.Fatal(err)
		}
		app := swex.Worker(k, *iters)
		inst := app.Setup(m)
		res, err := m.Run(inst.Thread, 0)
		if err != nil {
			log.Fatalf("worker k=%d on %s: %v", k, p.Name, err)
		}
		return res.Time
	}

	fmt.Printf("WORKER on %d nodes: run time relative to full-map\n\n", *nodes)
	fmt.Printf("%-6s", "size")
	for _, p := range protocols {
		fmt.Printf("  %-14s", p.Name)
	}
	fmt.Println()

	for _, k := range []int{1, 2, 4, 8, 12, *nodes - 1} {
		full := run(k, swex.FullMap())
		fmt.Printf("%-6d", k)
		for _, p := range protocols {
			fmt.Printf("  %-14.2f", float64(run(k, p))/float64(full))
		}
		fmt.Println()
	}
}
