// Workersweep: regenerate the Figure 2 data series — WORKER run-time
// ratios against the full-map directory as the worker-set size grows —
// using only the public API, orchestrated through the sweep engine so
// every point runs on the worker pool and (with -cache) persists in the
// content-addressed result cache across invocations.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"swex"
)

func main() {
	nodes := flag.Int("nodes", 16, "machine size")
	iters := flag.Int("iters", 10, "WORKER iterations")
	workers := flag.Int("workers", 0, "parallel sweep workers (0 = one per core)")
	cacheDir := flag.String("cache", "", "persistent result cache directory")
	flag.Parse()

	protocols := []swex.Protocol{
		swex.SoftwareOnly(),
		swex.OnePointer(swex.AckSW),
		swex.OnePointer(swex.AckLACK),
		swex.OnePointer(swex.AckHW),
		swex.LimitLESS(2),
		swex.LimitLESS(5),
	}
	sizes := []int{1, 2, 4, 8, 12, *nodes - 1}

	// One job per (size, protocol) point, full-map first per row so the
	// ratio denominator sits at a known stride.
	var jobs []swex.SweepJob
	for _, k := range sizes {
		for _, p := range append([]swex.Protocol{swex.FullMap()}, protocols...) {
			jobs = append(jobs, swex.SweepWorkerJob(k, *iters,
				swex.MachineConfig{Nodes: *nodes, Spec: p}))
		}
	}

	sweeper, err := swex.NewSweeper(swex.SweeperConfig{Workers: *workers, CacheDir: *cacheDir})
	if err != nil {
		log.Fatal(err)
	}
	defer sweeper.Close()

	results, err := sweeper.Run(context.Background(), jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("WORKER on %d nodes: run time relative to full-map\n\n", *nodes)
	fmt.Printf("%-6s", "size")
	for _, p := range protocols {
		fmt.Printf("  %-14s", p.Name)
	}
	fmt.Println()

	stride := 1 + len(protocols)
	for i, k := range sizes {
		row := results[i*stride : (i+1)*stride]
		full := row[0].Time
		fmt.Printf("%-6d", k)
		for _, r := range row[1:] {
			fmt.Printf("  %-14.2f", float64(r.Time)/float64(full))
		}
		fmt.Println()
	}
	fmt.Printf("\n%d point(s), %d simulation(s) executed on %d worker(s)\n",
		len(jobs), sweeper.TotalExecs(), sweeper.Workers())
}
