// Protospectrum: run one application (WATER by default) across the whole
// protocol spectrum and print the cost/performance tradeoff the paper is
// about — speedup and hardware directory cost side by side.
package main

import (
	"flag"
	"fmt"
	"log"

	"swex"
)

func main() {
	appName := flag.String("app", "WATER", "application: TSP AQ SMGRID EVOLVE MP3D WATER")
	nodes := flag.Int("nodes", 16, "machine size")
	flag.Parse()

	app, err := swex.AppByName(*appName)
	if err != nil {
		log.Fatal(err)
	}

	run := func(nodes int, p swex.Protocol) swex.Cycle {
		m, err := swex.NewMachine(swex.MachineConfig{
			Nodes: nodes, Spec: p, VictimLines: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		inst := app.Setup(m)
		res, err := m.Run(inst.Thread, 0)
		if err != nil {
			log.Fatalf("%s on %s: %v", *appName, p.Name, err)
		}
		return res.Time
	}

	seq := run(1, swex.FullMap())
	fmt.Printf("%s on %d nodes (sequential: %d cycles)\n\n", *appName, *nodes, seq)
	fmt.Printf("%-16s %-12s %-10s %s\n", "protocol", "hw pointers", "speedup", "vs full-map")
	fmt.Println("--------------------------------------------------------")

	full := run(*nodes, swex.FullMap())
	for _, p := range swex.Spectrum() {
		t := full
		if p.Name != swex.FullMap().Name {
			t = run(*nodes, p)
		}
		ptrs := fmt.Sprintf("%d", p.HWPointers)
		if p.FullMap {
			ptrs = "n (full map)"
		}
		fmt.Printf("%-16s %-12s %-10.1f %.0f%%\n",
			p.Name, ptrs, float64(seq)/float64(t), 100*float64(full)/float64(t))
	}
}
