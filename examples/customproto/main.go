// Customproto: write an application-specific protocol extension against
// the flexible coherence interface — the paper's Section 7 suggests users
// "could select special coherence types from a library, or even write an
// application-specific protocol under the flexible coherence interface."
//
// The custom software here is a profiling protocol: it behaves like a
// fixed-cost directory extension but records, per memory block, how many
// read overflows and write faults occurred — the "profile, detect, and
// optimize" development mode of Section 7. After the run it reports the
// blocks that never saw a write fault: widely-shared read-only data that a
// production run could mark for the read-only optimization.
package main

import (
	"fmt"
	"log"
	"sort"

	"swex"
)

// profilingSoftware implements swex.ProtocolSoftware. It keeps the
// extended sharer sets in Go maps and charges a flat handler cost, while
// counting per-block protocol events.
type profilingSoftware struct {
	sharers    map[swex.Block]map[swex.NodeID]bool
	readFaults map[swex.Block]int
	writeFault map[swex.Block]int
}

func newProfilingSoftware() *profilingSoftware {
	return &profilingSoftware{
		sharers:    make(map[swex.Block]map[swex.NodeID]bool),
		readFaults: make(map[swex.Block]int),
		writeFault: make(map[swex.Block]int),
	}
}

// Flat handler costs, in cycles: a simplified model standing in for the
// profiling build of the protocol software.
const (
	readCost  = 300
	writeCost = 500
	ackCost   = 60
)

func (p *profilingSoftware) ReadOverflow(b swex.Block, drained []swex.NodeID, r swex.NodeID) swex.Cycle {
	set := p.sharers[b]
	if set == nil {
		set = make(map[swex.NodeID]bool)
		p.sharers[b] = set
	}
	for _, d := range drained {
		set[d] = true
	}
	set[r] = true
	p.readFaults[b]++
	return readCost
}

func (p *profilingSoftware) ReadBatched(b swex.Block, r swex.NodeID) swex.Cycle {
	if set := p.sharers[b]; set != nil {
		set[r] = true
	}
	p.readFaults[b]++
	return readCost / 4
}

func (p *profilingSoftware) SharersOf(b swex.Block) []swex.NodeID {
	set := p.sharers[b]
	out := make([]swex.NodeID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (p *profilingSoftware) WriteFault(b swex.Block, r swex.NodeID, invs int) swex.Cycle {
	delete(p.sharers, b)
	p.writeFault[b]++
	return writeCost
}

func (p *profilingSoftware) AckTrap(b swex.Block, last bool) swex.Cycle { return ackCost }
func (p *profilingSoftware) LastAckTrap(b swex.Block) swex.Cycle        { return ackCost }

func main() {
	soft := newProfilingSoftware()
	m, err := swex.NewMachine(swex.MachineConfig{
		Nodes:          16,
		Spec:           swex.LimitLESS(2), // two pointers: plenty of overflows
		CustomSoftware: soft,
		VictimLines:    8,
	})
	if err != nil {
		log.Fatal(err)
	}

	app, err := swex.AppByName("EVOLVE")
	if err != nil {
		log.Fatal(err)
	}
	inst := app.Setup(m)
	res, err := m.Run(inst.Thread, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("EVOLVE under the profiling protocol: %d cycles, %d traps\n\n",
		res.Time, res.Traps)

	// Classify the software-extended blocks the profiler saw.
	readOnly, readWrite := 0, 0
	for b := range soft.readFaults {
		if soft.writeFault[b] == 0 {
			readOnly++
		} else {
			readWrite++
		}
	}
	fmt.Printf("blocks that overflowed the 2-pointer directory: %d\n", readOnly+readWrite)
	fmt.Printf("  widely shared but never write-faulted (read-only candidates): %d\n", readOnly)
	fmt.Printf("  also write-faulted (true producer/consumer or migratory):     %d\n", readWrite)
	fmt.Println("\nA production run could mark the read-only candidates with a")
	fmt.Println("specialized coherence type, as the paper's Section 7 proposes.")
}
