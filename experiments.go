package swex

import (
	"fmt"

	"swex/internal/apps"
	"swex/internal/machine"
	"swex/internal/proto"
	"swex/internal/report"
	"swex/internal/sim"
	"swex/internal/stats"
)

// Package-level note: every experiment function is deterministic — the
// same Options produce bit-identical results.

// Options controls how an experiment runs.
type Options struct {
	// Quick shrinks problem sizes and machine counts so the experiment
	// completes in a few seconds, preserving every qualitative shape.
	// Used by tests and short benchmark runs.
	Quick bool
}

// runApp executes one application configuration and returns the result.
func runApp(prog apps.Program, cfg machine.Config) (machine.Result, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return machine.Result{}, err
	}
	res, _, err := prog.Run(m, 0)
	return res, err
}

// runWorkerLedger runs WORKER and returns the machine (for its ledger).
func runWorkerLedger(nodes, setSize, iters int, sw machine.SoftwareKind) (*machine.Machine, machine.Result, error) {
	m, err := machine.New(machine.Config{
		Nodes: nodes, Spec: proto.LimitLESS(5), Software: sw,
	})
	if err != nil {
		return nil, machine.Result{}, err
	}
	prog := apps.Worker(apps.WorkerParams{SetSize: setSize, Iters: iters})
	res, _, err := prog.Run(m, 0)
	return m, res, err
}

// --------------------------------------------------------------- Table 1

// Table1Data holds the average software-extension latencies of the
// flexible (C) and hand-tuned (assembly) handlers under Dir_nH_5S_NB,
// sliced by readers per block — the paper's Table 1.
type Table1Data struct {
	Readers []int
	CRead   []float64
	ARead   []float64
	CWrite  []float64
	AWrite  []float64
}

// Table1 measures software handler latencies by running the WORKER
// benchmark on a 16-node machine, exactly as the paper does. (The largest
// worker set on 16 nodes with a distinct writer is 15 readers; the paper's
// 16-reader row becomes 15 here.)
func Table1(o Options) (*Table1Data, error) {
	readers := []int{8, 12, 15}
	iters := 10
	if o.Quick {
		readers = []int{8}
		iters = 4
	}
	d := &Table1Data{Readers: readers}
	for _, k := range readers {
		for _, sw := range []machine.SoftwareKind{machine.FlexibleC, machine.TunedASM} {
			m, _, err := runWorkerLedger(16, k, iters, sw)
			if err != nil {
				return nil, fmt.Errorf("table1 k=%d %s: %w", k, sw, err)
			}
			ledger := &m.Soft.Ledger
			read := ledger.Mean(stats.ReadRequest, -1)
			write := ledger.Mean(stats.WriteRequest, -1)
			if sw == machine.FlexibleC {
				d.CRead = append(d.CRead, read)
				d.CWrite = append(d.CWrite, write)
			} else {
				d.ARead = append(d.ARead, read)
				d.AWrite = append(d.AWrite, write)
			}
		}
	}
	return d, nil
}

// Table renders the data in the paper's layout.
func (d *Table1Data) Table() *report.Table {
	t := report.NewTable(
		"Table 1: average software-extension latencies (cycles), DirnH5SNB on 16 nodes",
		"readers/block", "C read", "asm read", "C write", "asm write")
	for i, k := range d.Readers {
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.0f", d.CRead[i]), fmt.Sprintf("%.0f", d.ARead[i]),
			fmt.Sprintf("%.0f", d.CWrite[i]), fmt.Sprintf("%.0f", d.AWrite[i]))
	}
	return t
}

// --------------------------------------------------------------- Table 2

// Table2Data holds the cycle breakdown of the median read and write
// handlers for both software implementations — the paper's Table 2.
type Table2Data struct {
	CRead, CWrite stats.Breakdown
	ARead, AWrite stats.Breakdown
}

// Table2 reproduces the per-activity cycle accounting by running WORKER
// with 8 readers per block on 16 nodes and selecting the median request of
// each type.
func Table2(o Options) (*Table2Data, error) {
	iters := 10
	if o.Quick {
		iters = 4
	}
	d := &Table2Data{}
	for _, sw := range []machine.SoftwareKind{machine.FlexibleC, machine.TunedASM} {
		m, _, err := runWorkerLedger(16, 8, iters, sw)
		if err != nil {
			return nil, fmt.Errorf("table2 %s: %w", sw, err)
		}
		ledger := &m.Soft.Ledger
		read, okR := ledger.Median(stats.ReadRequest, -1)
		write, okW := ledger.Median(stats.WriteRequest, -1)
		if !okR || !okW {
			return nil, fmt.Errorf("table2 %s: no handler records", sw)
		}
		if sw == machine.FlexibleC {
			d.CRead, d.CWrite = read.Breakdown, write.Breakdown
		} else {
			d.ARead, d.AWrite = read.Breakdown, write.Breakdown
		}
	}
	return d, nil
}

// String renders both implementations' breakdowns.
func (d *Table2Data) String() string {
	return "Table 2: median handler cycle breakdown, 8 readers / 1 writer\n\n" +
		"Flexible coherence interface (C):\n" +
		stats.FormatBreakdown(&d.CRead, &d.CWrite) +
		"\nHand-tuned assembly:\n" +
		stats.FormatBreakdown(&d.ARead, &d.AWrite)
}

// -------------------------------------------------------------- Figure 2

// Figure2Data holds WORKER run-time ratios against the full-map protocol
// across worker-set sizes — the paper's Figure 2.
type Figure2Data struct {
	Sizes     []int
	Protocols []string
	// Ratio[protocol][size index] = run time / full-map run time.
	Ratio map[string][]float64
}

// figure2Specs are the protocols Figure 2 sweeps (solid curves are the
// Alewife-implementable ones; dashed are the simulator-only one-pointer
// variants).
func figure2Specs() []proto.Spec {
	return []proto.Spec{
		proto.SoftwareOnly(),
		proto.OnePointer(proto.AckSW),
		proto.OnePointer(proto.AckLACK),
		proto.OnePointer(proto.AckHW),
		proto.LimitLESS(2),
		proto.LimitLESS(5),
	}
}

// Figure2 runs the WORKER worker-set-size sweep on 16 nodes.
func Figure2(o Options) (*Figure2Data, error) {
	sizes := []int{1, 2, 4, 8, 12, 15}
	iters := 10
	if o.Quick {
		sizes = []int{2, 8}
		iters = 4
	}
	specs := figure2Specs()
	d := &Figure2Data{Sizes: sizes, Ratio: make(map[string][]float64)}
	for _, s := range specs {
		d.Protocols = append(d.Protocols, s.Name)
	}
	for _, k := range sizes {
		prog := apps.Worker(apps.WorkerParams{SetSize: k, Iters: iters})
		full, err := runApp(prog, machine.Config{Nodes: 16, Spec: proto.FullMap()})
		if err != nil {
			return nil, fmt.Errorf("figure2 full-map k=%d: %w", k, err)
		}
		for _, spec := range specs {
			res, err := runApp(prog, machine.Config{Nodes: 16, Spec: spec})
			if err != nil {
				return nil, fmt.Errorf("figure2 %s k=%d: %w", spec.Name, k, err)
			}
			d.Ratio[spec.Name] = append(d.Ratio[spec.Name],
				float64(res.Time)/float64(full.Time))
		}
	}
	return d, nil
}

// Figure renders the sweep as series over worker-set size.
func (d *Figure2Data) Figure() *report.Figure {
	f := report.NewFigure("Figure 2: WORKER protocol performance vs worker-set size (16 nodes)",
		"worker set size", "run time / full-map run time")
	for _, p := range d.Protocols {
		s := f.Line(p)
		for i, k := range d.Sizes {
			s.Add(float64(k), d.Ratio[p][i])
		}
	}
	return f
}

// --------------------------------------------------------------- Table 3

// Table3Row describes one application.
type Table3Row struct {
	Name       string
	Language   string // the paper's implementation language
	Size       string // our (scaled) problem size
	SeqSeconds float64
	SeqCycles  sim.Cycle
}

// Table3 measures each application's sequential time on one node at the
// 33 MHz Alewife clock. Languages are the paper's; sizes are this
// reproduction's scaled instances.
func Table3(o Options) ([]Table3Row, error) {
	registry := apps.Registry()
	if o.Quick {
		registry = apps.QuickRegistry()
	}
	meta := map[string][2]string{
		"TSP":    {"Mul-T", "11 city tour"},
		"AQ":     {"Semi-C", "x^4y^4 over ((0,0),(2,2))"},
		"SMGRID": {"Mul-T", "65 x 65"},
		"EVOLVE": {"Mul-T", "12 dimensions"},
		"MP3D":   {"C", "4,096 particles"},
		"WATER":  {"C", "64 molecules"},
	}
	var rows []Table3Row
	for _, prog := range registry {
		res, err := runApp(prog, machine.Config{Nodes: 1, Spec: proto.FullMap(), VictimLines: 8})
		if err != nil {
			return nil, fmt.Errorf("table3 %s: %w", prog.Name, err)
		}
		m := meta[prog.Name]
		rows = append(rows, Table3Row{
			Name: prog.Name, Language: m[0], Size: m[1],
			SeqSeconds: res.Time.Seconds(), SeqCycles: res.Time,
		})
	}
	return rows, nil
}

// Table3Table renders the rows.
func Table3Table(rows []Table3Row) *report.Table {
	t := report.NewTable("Table 3: application characteristics (sequential at 33 MHz)",
		"name", "language", "size", "sequential")
	for _, r := range rows {
		t.AddRow(r.Name, r.Language, r.Size, fmt.Sprintf("%.3f sec", r.SeqSeconds))
	}
	return t
}

// -------------------------------------------------- Figures 3, 4, and 5

// fig4Specs are the protocol spectrum points of the application studies:
// 0, 1, 2, and 5 hardware pointers plus the full map. The one-pointer
// protocol is Dir_nH_1S_NB,ACK, as in all of the paper's Section 6 figures.
func fig4Specs() []proto.Spec {
	return []proto.Spec{
		proto.SoftwareOnly(),
		proto.OnePointer(proto.AckSW),
		proto.LimitLESS(2),
		proto.LimitLESS(5),
		proto.FullMap(),
	}
}

// pointerLabel maps a spec to its Figure 4 x-axis position.
func pointerLabel(s proto.Spec) string {
	switch {
	case s.FullMap:
		return "n"
	default:
		return fmt.Sprintf("%d", s.HWPointers)
	}
}

// Figure3Data holds the TSP cache-configuration study: run time and
// speedup per protocol for the plain direct-mapped cache, the perfect
// instruction-fetch simulator option, and the victim cache.
type Figure3Data struct {
	Modes     []string
	Protocols []string
	// Speedup[mode][i] is the speedup of protocol i over the sequential
	// run in the same cache mode.
	Speedup map[string][]float64
	// Time[mode][i] is the parallel run time in cycles.
	Time map[string][]sim.Cycle
}

// Figure3 reproduces the TSP instruction/data thrashing study on 64 nodes
// (16 in quick mode).
func Figure3(o Options) (*Figure3Data, error) {
	nodes := 64
	prog := apps.TSP(apps.DefaultTSP())
	if o.Quick {
		nodes = 16
		prog = apps.QuickRegistry()[0]
	}
	specs := fig4Specs()
	d := &Figure3Data{
		Modes:   []string{"base", "perfect-ifetch", "victim-cache"},
		Speedup: make(map[string][]float64),
		Time:    make(map[string][]sim.Cycle),
	}
	for _, s := range specs {
		d.Protocols = append(d.Protocols, pointerLabel(s))
	}
	for _, mode := range d.Modes {
		cfg := machine.Config{Nodes: 1, Spec: proto.FullMap()}
		apply := func(c *machine.Config) {
			switch mode {
			case "perfect-ifetch":
				c.PerfectIfetch = true
			case "victim-cache":
				c.VictimLines = 8
			}
		}
		apply(&cfg)
		seq, err := runApp(prog, cfg)
		if err != nil {
			return nil, fmt.Errorf("figure3 seq %s: %w", mode, err)
		}
		for _, spec := range specs {
			pcfg := machine.Config{Nodes: nodes, Spec: spec}
			apply(&pcfg)
			res, err := runApp(prog, pcfg)
			if err != nil {
				return nil, fmt.Errorf("figure3 %s %s: %w", mode, spec.Name, err)
			}
			d.Speedup[mode] = append(d.Speedup[mode], float64(seq.Time)/float64(res.Time))
			d.Time[mode] = append(d.Time[mode], res.Time)
		}
	}
	return d, nil
}

// Table renders speedups, protocols as rows and cache modes as columns.
func (d *Figure3Data) Table() *report.Table {
	t := report.NewTable("Figure 3: TSP detailed performance analysis (speedup over sequential)",
		append([]string{"hw pointers"}, d.Modes...)...)
	for i, p := range d.Protocols {
		row := []string{p}
		for _, m := range d.Modes {
			row = append(row, fmt.Sprintf("%.1f", d.Speedup[m][i]))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure4Data holds application speedups across the protocol spectrum —
// the paper's Figure 4 (a)–(f).
type Figure4Data struct {
	Apps      []string
	Protocols []string
	// Speedup[app][i] is the speedup of protocol i over sequential.
	Speedup map[string][]float64
	// Nodes is the machine size used.
	Nodes int
}

// Figure4 runs every application across the spectrum with victim caching
// enabled (the paper's default after the TSP study), on 64 nodes (16 in
// quick mode, with reduced problem sizes).
func Figure4(o Options) (*Figure4Data, error) {
	nodes := 64
	registry := apps.Registry()
	if o.Quick {
		nodes = 16
		registry = apps.QuickRegistry()
	}
	specs := fig4Specs()
	d := &Figure4Data{Speedup: make(map[string][]float64), Nodes: nodes}
	for _, s := range specs {
		d.Protocols = append(d.Protocols, pointerLabel(s))
	}
	for _, prog := range registry {
		d.Apps = append(d.Apps, prog.Name)
		seq, err := runApp(prog, machine.Config{Nodes: 1, Spec: proto.FullMap(), VictimLines: 8})
		if err != nil {
			return nil, fmt.Errorf("figure4 seq %s: %w", prog.Name, err)
		}
		for _, spec := range specs {
			res, err := runApp(prog, machine.Config{Nodes: nodes, Spec: spec, VictimLines: 8})
			if err != nil {
				return nil, fmt.Errorf("figure4 %s %s: %w", prog.Name, spec.Name, err)
			}
			d.Speedup[prog.Name] = append(d.Speedup[prog.Name],
				float64(seq.Time)/float64(res.Time))
		}
	}
	return d, nil
}

// Table renders speedups, hardware-pointer counts as rows.
func (d *Figure4Data) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 4: application speedups over sequential (%d nodes, victim caching)", d.Nodes),
		append([]string{"hw pointers"}, d.Apps...)...)
	for i, p := range d.Protocols {
		row := []string{p}
		for _, a := range d.Apps {
			row = append(row, fmt.Sprintf("%.1f", d.Speedup[a][i]))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure5Data holds the 256-node TSP run — the paper's Figure 5.
type Figure5Data struct {
	Protocols []string
	Speedup   []float64
	Nodes     int
}

// Figure5 runs TSP on 256 nodes with victim caching (64 in quick mode).
func Figure5(o Options) (*Figure5Data, error) {
	nodes := 256
	prog := apps.TSP(apps.DefaultTSP())
	if o.Quick {
		nodes = 64
		prog = apps.QuickRegistry()[0]
	}
	seq, err := runApp(prog, machine.Config{Nodes: 1, Spec: proto.FullMap(), VictimLines: 8})
	if err != nil {
		return nil, fmt.Errorf("figure5 seq: %w", err)
	}
	d := &Figure5Data{Nodes: nodes}
	for _, spec := range fig4Specs() {
		res, err := runApp(prog, machine.Config{Nodes: nodes, Spec: spec, VictimLines: 8})
		if err != nil {
			return nil, fmt.Errorf("figure5 %s: %w", spec.Name, err)
		}
		d.Protocols = append(d.Protocols, pointerLabel(spec))
		d.Speedup = append(d.Speedup, float64(seq.Time)/float64(res.Time))
	}
	return d, nil
}

// Table renders the speedups.
func (d *Figure5Data) Table() *report.Table {
	t := report.NewTable(fmt.Sprintf("Figure 5: TSP on %d nodes (speedup over sequential)", d.Nodes),
		"hw pointers", "speedup")
	for i, p := range d.Protocols {
		t.AddRow(p, fmt.Sprintf("%.1f", d.Speedup[i]))
	}
	return t
}

// -------------------------------------------------------------- Figure 6

// Figure6Data is the worker-set size histogram of EVOLVE — the paper's
// Figure 6. Buckets map a worker-set size to the number of memory blocks
// whose largest simultaneous worker set had that size.
type Figure6Data struct {
	Hist  *stats.Hist
	Nodes int
}

// Figure6 runs EVOLVE on 64 nodes under the full-map protocol (which
// tracks every worker set exactly) and collects the histogram.
func Figure6(o Options) (*Figure6Data, error) {
	nodes := 64
	prog := apps.Evolve(apps.DefaultEvolve())
	if o.Quick {
		nodes = 16
		prog = apps.QuickRegistry()[3]
	}
	m, err := machine.New(machine.Config{Nodes: nodes, Spec: proto.FullMap(), VictimLines: 8})
	if err != nil {
		return nil, err
	}
	res, _, err := prog.Run(m, 0)
	if err != nil {
		return nil, fmt.Errorf("figure6: %w", err)
	}
	return &Figure6Data{Hist: res.WorkerSets, Nodes: nodes}, nil
}

// Table renders the histogram.
func (d *Figure6Data) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 6: histogram of worker-set sizes for EVOLVE (%d nodes)", d.Nodes),
		"worker set size", "memory blocks")
	for _, b := range d.Hist.Buckets() {
		t.AddRow(fmt.Sprintf("%d", b), fmt.Sprintf("%d", d.Hist.Count(b)))
	}
	return t
}

// ------------------------------------------------------- scaling study

// ScalingData holds speedups as the machine grows, per protocol — the
// extension of Figure 5's question ("what happens at 256 nodes?") to the
// whole spectrum.
type ScalingData struct {
	Sizes     []int
	Protocols []string
	// Speedup[protocol][i] is the speedup at Sizes[i] over sequential.
	Speedup map[string][]float64
}

// ScalingStudy runs TSP at increasing machine sizes across four protocol
// spectrum points.
func ScalingStudy(o Options) (*ScalingData, error) {
	sizes := []int{16, 64, 256}
	prog := apps.TSP(apps.DefaultTSP())
	if o.Quick {
		sizes = []int{4, 16}
		prog = apps.QuickRegistry()[0]
	}
	specs := []proto.Spec{
		proto.SoftwareOnly(),
		proto.OnePointer(proto.AckSW),
		proto.LimitLESS(5),
		proto.FullMap(),
	}
	seq, err := runApp(prog, machine.Config{Nodes: 1, Spec: proto.FullMap(), VictimLines: 8})
	if err != nil {
		return nil, fmt.Errorf("scaling seq: %w", err)
	}
	d := &ScalingData{Sizes: sizes, Speedup: make(map[string][]float64)}
	for _, s := range specs {
		d.Protocols = append(d.Protocols, s.Name)
	}
	for _, spec := range specs {
		for _, n := range sizes {
			res, err := runApp(prog, machine.Config{Nodes: n, Spec: spec, VictimLines: 8})
			if err != nil {
				return nil, fmt.Errorf("scaling %s P=%d: %w", spec.Name, n, err)
			}
			d.Speedup[spec.Name] = append(d.Speedup[spec.Name],
				float64(seq.Time)/float64(res.Time))
		}
	}
	return d, nil
}

// Figure renders the study as speedup series over machine size.
func (d *ScalingData) Figure() *report.Figure {
	f := report.NewFigure("Scaling study: TSP speedup vs machine size",
		"nodes", "speedup over sequential")
	for _, p := range d.Protocols {
		s := f.Line(p)
		for i, n := range d.Sizes {
			s.Add(float64(n), d.Speedup[p][i])
		}
	}
	return f
}
