package swex

import (
	"context"
	"fmt"

	"swex/internal/apps"
	"swex/internal/machine"
	"swex/internal/memtier"
	"swex/internal/proto"
	"swex/internal/report"
	"swex/internal/sim"
	"swex/internal/stats"
	"swex/internal/sweep"
)

// Package-level note: every experiment function is deterministic — the
// same Options produce bit-identical results, at any worker count.
//
// Each experiment is split into a job-matrix builder (XxxJobs) and an
// assembler (Xxx). The builder enumerates the experiment's simulation
// points as canonical sweep jobs; the assembler runs them through a sweep
// runner and shapes the results into the paper's table or figure. Builders
// and assemblers share the same loop structure, so results are consumed by
// index. Running several experiments through one shared Runner (as cmd/swex
// and cmd/swexsweep do) deduplicates the simulation points they share —
// for example the sequential baselines common to Table 3, Figure 4,
// Figure 5, and the scaling study run once, not four times.

// JobRunner is where an experiment's sweep jobs execute: the in-process
// Sweeper, or a swexd coordinator client that leases the jobs out to
// remote workers. Implementations must return results index-aligned with
// the submitted jobs (fail-fast on the first failure by submission order),
// which is what makes experiment output independent of where and in what
// order the simulations actually ran.
type JobRunner interface {
	// Run executes the matrix and returns one result per job in
	// submission order, or the first failure by submission order.
	Run(ctx context.Context, jobs []sweep.Job) ([]sweep.Result, error)
}

// Options controls how an experiment runs.
type Options struct {
	// Quick shrinks problem sizes and machine counts so the experiment
	// completes in a few seconds, preserving every qualitative shape.
	// Used by tests and short benchmark runs.
	Quick bool
	// Sweep is the job runner experiments execute on. Nil uses a private
	// in-memory runner with one worker per core. Sharing one runner
	// across experiments shares its result cache (and, when configured
	// with a cache directory, persists results across processes). A
	// distributed runner (swexd's coordinator client) slots in here too:
	// the assemblers consume results by submission index either way, so
	// output is byte-identical wherever the simulations ran.
	Sweep JobRunner
	// SimWorkers runs each simulation on the conservative parallel engine
	// with this many shard workers (0 or 1 = serial). It only configures
	// the private runner used when Sweep is nil; a caller-supplied runner
	// carries its own sweep.Config.SimWorkers. Either way the knob is
	// invisible to the result cache: parallel runs are byte-identical to
	// serial (DESIGN.md §14), so the two share cache entries.
	SimWorkers int
}

// sweeper returns the runner the experiment executes on.
func (o Options) sweeper() JobRunner {
	if o.Sweep != nil {
		return o.Sweep
	}
	return sweep.MustNewRunner(sweep.Config{SimWorkers: o.SimWorkers})
}

// run executes the matrix with fail-fast semantics.
func (o Options) run(jobs []sweep.Job) ([]sweep.Result, error) {
	return o.sweeper().Run(context.Background(), jobs)
}

// runApp executes one application configuration and returns the result.
// Ablations use this directly; the tables and figures go through the sweep
// runner instead.
func runApp(prog apps.Program, cfg machine.Config) (machine.Result, error) {
	m, err := machine.New(cfg)
	if err != nil {
		return machine.Result{}, err
	}
	res, _, err := prog.Run(m, 0)
	return res, err
}

// --------------------------------------------------------------- Table 1

// Table1Data holds the average software-extension latencies of the
// flexible (C) and hand-tuned (assembly) handlers under Dir_nH_5S_NB,
// sliced by readers per block — the paper's Table 1.
type Table1Data struct {
	Readers []int
	CRead   []float64
	ARead   []float64
	CWrite  []float64
	AWrite  []float64
}

// table1Shape returns the readers-per-block slices and iteration count.
func table1Shape(o Options) (readers []int, iters int) {
	readers = []int{8, 12, 15}
	iters = 10
	if o.Quick {
		readers = []int{8}
		iters = 4
	}
	return readers, iters
}

// Table1Jobs enumerates the WORKER runs behind Table 1: one job per
// (readers, software implementation) pair, software-kind innermost.
func Table1Jobs(o Options) []sweep.Job {
	readers, iters := table1Shape(o)
	var jobs []sweep.Job
	for _, k := range readers {
		for _, sw := range []machine.SoftwareKind{machine.FlexibleC, machine.TunedASM} {
			jobs = append(jobs, sweep.WorkerJob(k, iters, machine.Config{
				Nodes: 16, Spec: proto.LimitLESS(5), Software: sw,
			}))
		}
	}
	return jobs
}

// Table1 measures software handler latencies by running the WORKER
// benchmark on a 16-node machine, exactly as the paper does. (The largest
// worker set on 16 nodes with a distinct writer is 15 readers; the paper's
// 16-reader row becomes 15 here.)
func Table1(o Options) (*Table1Data, error) {
	readers, _ := table1Shape(o)
	results, err := o.run(Table1Jobs(o))
	if err != nil {
		return nil, fmt.Errorf("table1: %w", err)
	}
	d := &Table1Data{Readers: readers}
	for i := range readers {
		c, a := results[i*2], results[i*2+1]
		d.CRead = append(d.CRead, c.ReadMean)
		d.CWrite = append(d.CWrite, c.WriteMean)
		d.ARead = append(d.ARead, a.ReadMean)
		d.AWrite = append(d.AWrite, a.WriteMean)
	}
	return d, nil
}

// Table renders the data in the paper's layout.
func (d *Table1Data) Table() *report.Table {
	t := report.NewTable(
		"Table 1: average software-extension latencies (cycles), DirnH5SNB on 16 nodes",
		"readers/block", "C read", "asm read", "C write", "asm write")
	for i, k := range d.Readers {
		t.AddRow(fmt.Sprintf("%d", k),
			fmt.Sprintf("%.0f", d.CRead[i]), fmt.Sprintf("%.0f", d.ARead[i]),
			fmt.Sprintf("%.0f", d.CWrite[i]), fmt.Sprintf("%.0f", d.AWrite[i]))
	}
	return t
}

// --------------------------------------------------------------- Table 2

// Table2Data holds the cycle breakdown of the median read and write
// handlers for both software implementations — the paper's Table 2.
type Table2Data struct {
	CRead, CWrite stats.Breakdown
	ARead, AWrite stats.Breakdown
}

// Table2Jobs enumerates the two WORKER runs behind Table 2 (flexible C,
// then assembly), 8 readers per block on 16 nodes. These are the same
// simulation points as Table 1's 8-reader row, so a shared runner computes
// them once for both tables.
func Table2Jobs(o Options) []sweep.Job {
	_, iters := table1Shape(o)
	var jobs []sweep.Job
	for _, sw := range []machine.SoftwareKind{machine.FlexibleC, machine.TunedASM} {
		jobs = append(jobs, sweep.WorkerJob(8, iters, machine.Config{
			Nodes: 16, Spec: proto.LimitLESS(5), Software: sw,
		}))
	}
	return jobs
}

// Table2 reproduces the per-activity cycle accounting by running WORKER
// with 8 readers per block on 16 nodes and selecting the median request of
// each type.
func Table2(o Options) (*Table2Data, error) {
	results, err := o.run(Table2Jobs(o))
	if err != nil {
		return nil, fmt.Errorf("table2: %w", err)
	}
	d := &Table2Data{}
	for i, sw := range []machine.SoftwareKind{machine.FlexibleC, machine.TunedASM} {
		res := results[i]
		if !res.HasReadMedian || !res.HasWriteMedian {
			return nil, fmt.Errorf("table2 %s: no handler records", sw)
		}
		if sw == machine.FlexibleC {
			d.CRead, d.CWrite = res.ReadMedian.Stats(), res.WriteMedian.Stats()
		} else {
			d.ARead, d.AWrite = res.ReadMedian.Stats(), res.WriteMedian.Stats()
		}
	}
	return d, nil
}

// String renders both implementations' breakdowns.
func (d *Table2Data) String() string {
	return "Table 2: median handler cycle breakdown, 8 readers / 1 writer\n\n" +
		"Flexible coherence interface (C):\n" +
		stats.FormatBreakdown(&d.CRead, &d.CWrite) +
		"\nHand-tuned assembly:\n" +
		stats.FormatBreakdown(&d.ARead, &d.AWrite)
}

// -------------------------------------------------------------- Figure 2

// Figure2Data holds WORKER run-time ratios against the full-map protocol
// across worker-set sizes — the paper's Figure 2.
type Figure2Data struct {
	Sizes     []int
	Protocols []string
	// Ratio[protocol][size index] = run time / full-map run time.
	Ratio map[string][]float64
}

// figure2Specs are the protocols Figure 2 sweeps (solid curves are the
// Alewife-implementable ones; dashed are the simulator-only one-pointer
// variants).
func figure2Specs() []proto.Spec {
	return []proto.Spec{
		proto.SoftwareOnly(),
		proto.OnePointer(proto.AckSW),
		proto.OnePointer(proto.AckLACK),
		proto.OnePointer(proto.AckHW),
		proto.LimitLESS(2),
		proto.LimitLESS(5),
	}
}

// figure2Shape returns the worker-set sizes and iteration count.
func figure2Shape(o Options) (sizes []int, iters int) {
	sizes = []int{1, 2, 4, 8, 12, 15}
	iters = 10
	if o.Quick {
		sizes = []int{2, 8}
		iters = 4
	}
	return sizes, iters
}

// Figure2Jobs enumerates the WORKER protocol sweep: for each worker-set
// size, the full-map baseline followed by each spectrum point.
func Figure2Jobs(o Options) []sweep.Job {
	sizes, iters := figure2Shape(o)
	var jobs []sweep.Job
	for _, k := range sizes {
		jobs = append(jobs, sweep.WorkerJob(k, iters, machine.Config{Nodes: 16, Spec: proto.FullMap()}))
		for _, spec := range figure2Specs() {
			jobs = append(jobs, sweep.WorkerJob(k, iters, machine.Config{Nodes: 16, Spec: spec}))
		}
	}
	return jobs
}

// Figure2 runs the WORKER worker-set-size sweep on 16 nodes.
func Figure2(o Options) (*Figure2Data, error) {
	sizes, _ := figure2Shape(o)
	specs := figure2Specs()
	results, err := o.run(Figure2Jobs(o))
	if err != nil {
		return nil, fmt.Errorf("figure2: %w", err)
	}
	d := &Figure2Data{Sizes: sizes, Ratio: make(map[string][]float64)}
	for _, s := range specs {
		d.Protocols = append(d.Protocols, s.Name)
	}
	stride := 1 + len(specs)
	for i := range sizes {
		full := results[i*stride]
		for j, spec := range specs {
			res := results[i*stride+1+j]
			d.Ratio[spec.Name] = append(d.Ratio[spec.Name],
				float64(res.Time)/float64(full.Time))
		}
	}
	return d, nil
}

// Figure renders the sweep as series over worker-set size.
func (d *Figure2Data) Figure() *report.Figure {
	f := report.NewFigure("Figure 2: WORKER protocol performance vs worker-set size (16 nodes)",
		"worker set size", "run time / full-map run time")
	for _, p := range d.Protocols {
		s := f.Line(p)
		for i, k := range d.Sizes {
			s.Add(float64(k), d.Ratio[p][i])
		}
	}
	return f
}

// --------------------------------------------------------------- Table 3

// Table3Row describes one application.
type Table3Row struct {
	Name       string
	Language   string // the paper's implementation language
	Size       string // our (scaled) problem size
	SeqSeconds float64
	SeqCycles  sim.Cycle
}

// table3Names lists the applications in registry (Figure 4) order.
func table3Names(o Options) []string {
	registry := apps.Registry()
	if o.Quick {
		registry = apps.QuickRegistry()
	}
	var names []string
	for _, prog := range registry {
		names = append(names, prog.Name)
	}
	return names
}

// Table3Jobs enumerates the sequential baseline of each application: one
// node, full-map, victim caching — the same configuration the parallel
// studies normalize against, so a shared runner computes each baseline
// once across Table 3, Figure 4, Figure 5, and the scaling study.
func Table3Jobs(o Options) []sweep.Job {
	var jobs []sweep.Job
	for _, name := range table3Names(o) {
		jobs = append(jobs, sweep.AppJob(name, o.Quick, machine.Config{
			Nodes: 1, Spec: proto.FullMap(), VictimLines: 8,
		}))
	}
	return jobs
}

// Table3 measures each application's sequential time on one node at the
// 33 MHz Alewife clock. Languages are the paper's; sizes are this
// reproduction's scaled instances.
func Table3(o Options) ([]Table3Row, error) {
	meta := map[string][2]string{
		"TSP":    {"Mul-T", "11 city tour"},
		"AQ":     {"Semi-C", "x^4y^4 over ((0,0),(2,2))"},
		"SMGRID": {"Mul-T", "65 x 65"},
		"EVOLVE": {"Mul-T", "12 dimensions"},
		"MP3D":   {"C", "4,096 particles"},
		"WATER":  {"C", "64 molecules"},
	}
	results, err := o.run(Table3Jobs(o))
	if err != nil {
		return nil, fmt.Errorf("table3: %w", err)
	}
	var rows []Table3Row
	for i, name := range table3Names(o) {
		m := meta[name]
		rows = append(rows, Table3Row{
			Name: name, Language: m[0], Size: m[1],
			SeqSeconds: results[i].Time.Seconds(), SeqCycles: results[i].Time,
		})
	}
	return rows, nil
}

// Table3Table renders the rows.
func Table3Table(rows []Table3Row) *report.Table {
	t := report.NewTable("Table 3: application characteristics (sequential at 33 MHz)",
		"name", "language", "size", "sequential")
	for _, r := range rows {
		t.AddRow(r.Name, r.Language, r.Size, fmt.Sprintf("%.3f sec", r.SeqSeconds))
	}
	return t
}

// -------------------------------------------------- Figures 3, 4, and 5

// fig4Specs are the protocol spectrum points of the application studies:
// 0, 1, 2, and 5 hardware pointers plus the full map. The one-pointer
// protocol is Dir_nH_1S_NB,ACK, as in all of the paper's Section 6 figures.
func fig4Specs() []proto.Spec {
	return []proto.Spec{
		proto.SoftwareOnly(),
		proto.OnePointer(proto.AckSW),
		proto.LimitLESS(2),
		proto.LimitLESS(5),
		proto.FullMap(),
	}
}

// pointerLabel maps a spec to its Figure 4 x-axis position.
func pointerLabel(s proto.Spec) string {
	switch {
	case s.FullMap:
		return "n"
	default:
		return fmt.Sprintf("%d", s.HWPointers)
	}
}

// Figure3Data holds the TSP cache-configuration study: run time and
// speedup per protocol for the plain direct-mapped cache, the perfect
// instruction-fetch simulator option, and the victim cache.
type Figure3Data struct {
	Modes     []string
	Protocols []string
	// Speedup[mode][i] is the speedup of protocol i over the sequential
	// run in the same cache mode.
	Speedup map[string][]float64
	// Time[mode][i] is the parallel run time in cycles.
	Time map[string][]sim.Cycle
}

// figure3Modes are the cache configurations of the TSP study.
func figure3Modes() []string { return []string{"base", "perfect-ifetch", "victim-cache"} }

// figure3Apply sets one cache mode on a configuration.
func figure3Apply(mode string, c *machine.Config) {
	switch mode {
	case "perfect-ifetch":
		c.PerfectIfetch = true
	case "victim-cache":
		c.VictimLines = 8
	}
}

// Figure3Jobs enumerates the TSP thrashing study: for each cache mode, the
// sequential baseline followed by each spectrum point.
func Figure3Jobs(o Options) []sweep.Job {
	nodes := 64
	if o.Quick {
		nodes = 16
	}
	var jobs []sweep.Job
	for _, mode := range figure3Modes() {
		seq := machine.Config{Nodes: 1, Spec: proto.FullMap()}
		figure3Apply(mode, &seq)
		jobs = append(jobs, sweep.AppJob("TSP", o.Quick, seq))
		for _, spec := range fig4Specs() {
			cfg := machine.Config{Nodes: nodes, Spec: spec}
			figure3Apply(mode, &cfg)
			jobs = append(jobs, sweep.AppJob("TSP", o.Quick, cfg))
		}
	}
	return jobs
}

// Figure3 reproduces the TSP instruction/data thrashing study on 64 nodes
// (16 in quick mode).
func Figure3(o Options) (*Figure3Data, error) {
	specs := fig4Specs()
	results, err := o.run(Figure3Jobs(o))
	if err != nil {
		return nil, fmt.Errorf("figure3: %w", err)
	}
	d := &Figure3Data{
		Modes:   figure3Modes(),
		Speedup: make(map[string][]float64),
		Time:    make(map[string][]sim.Cycle),
	}
	for _, s := range specs {
		d.Protocols = append(d.Protocols, pointerLabel(s))
	}
	stride := 1 + len(specs)
	for mi, mode := range d.Modes {
		seq := results[mi*stride]
		for j := range specs {
			res := results[mi*stride+1+j]
			d.Speedup[mode] = append(d.Speedup[mode], float64(seq.Time)/float64(res.Time))
			d.Time[mode] = append(d.Time[mode], res.Time)
		}
	}
	return d, nil
}

// Table renders speedups, protocols as rows and cache modes as columns.
func (d *Figure3Data) Table() *report.Table {
	t := report.NewTable("Figure 3: TSP detailed performance analysis (speedup over sequential)",
		append([]string{"hw pointers"}, d.Modes...)...)
	for i, p := range d.Protocols {
		row := []string{p}
		for _, m := range d.Modes {
			row = append(row, fmt.Sprintf("%.1f", d.Speedup[m][i]))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure4Data holds application speedups across the protocol spectrum —
// the paper's Figure 4 (a)–(f).
type Figure4Data struct {
	Apps      []string
	Protocols []string
	// Speedup[app][i] is the speedup of protocol i over sequential.
	Speedup map[string][]float64
	// Nodes is the machine size used.
	Nodes int
}

// Figure4Jobs enumerates the application studies: for each application,
// the sequential baseline (shared with Table 3) followed by each spectrum
// point, victim caching throughout.
func Figure4Jobs(o Options) []sweep.Job {
	nodes := 64
	if o.Quick {
		nodes = 16
	}
	var jobs []sweep.Job
	for _, name := range table3Names(o) {
		jobs = append(jobs, sweep.AppJob(name, o.Quick, machine.Config{
			Nodes: 1, Spec: proto.FullMap(), VictimLines: 8,
		}))
		for _, spec := range fig4Specs() {
			jobs = append(jobs, sweep.AppJob(name, o.Quick, machine.Config{
				Nodes: nodes, Spec: spec, VictimLines: 8,
			}))
		}
	}
	return jobs
}

// Figure4 runs every application across the spectrum with victim caching
// enabled (the paper's default after the TSP study), on 64 nodes (16 in
// quick mode, with reduced problem sizes).
func Figure4(o Options) (*Figure4Data, error) {
	nodes := 64
	if o.Quick {
		nodes = 16
	}
	specs := fig4Specs()
	results, err := o.run(Figure4Jobs(o))
	if err != nil {
		return nil, fmt.Errorf("figure4: %w", err)
	}
	d := &Figure4Data{Speedup: make(map[string][]float64), Nodes: nodes}
	for _, s := range specs {
		d.Protocols = append(d.Protocols, pointerLabel(s))
	}
	stride := 1 + len(specs)
	for ai, name := range table3Names(o) {
		d.Apps = append(d.Apps, name)
		seq := results[ai*stride]
		for j := range specs {
			res := results[ai*stride+1+j]
			d.Speedup[name] = append(d.Speedup[name],
				float64(seq.Time)/float64(res.Time))
		}
	}
	return d, nil
}

// Table renders speedups, hardware-pointer counts as rows.
func (d *Figure4Data) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 4: application speedups over sequential (%d nodes, victim caching)", d.Nodes),
		append([]string{"hw pointers"}, d.Apps...)...)
	for i, p := range d.Protocols {
		row := []string{p}
		for _, a := range d.Apps {
			row = append(row, fmt.Sprintf("%.1f", d.Speedup[a][i]))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure5Data holds the 256-node TSP run — the paper's Figure 5.
type Figure5Data struct {
	Protocols []string
	Speedup   []float64
	Nodes     int
}

// Figure5Jobs enumerates the large-machine TSP run: the sequential
// baseline followed by each spectrum point on 256 nodes (64 in quick mode).
func Figure5Jobs(o Options) []sweep.Job {
	nodes := 256
	if o.Quick {
		nodes = 64
	}
	jobs := []sweep.Job{sweep.AppJob("TSP", o.Quick, machine.Config{
		Nodes: 1, Spec: proto.FullMap(), VictimLines: 8,
	})}
	for _, spec := range fig4Specs() {
		jobs = append(jobs, sweep.AppJob("TSP", o.Quick, machine.Config{
			Nodes: nodes, Spec: spec, VictimLines: 8,
		}))
	}
	return jobs
}

// Figure5 runs TSP on 256 nodes with victim caching (64 in quick mode).
func Figure5(o Options) (*Figure5Data, error) {
	nodes := 256
	if o.Quick {
		nodes = 64
	}
	results, err := o.run(Figure5Jobs(o))
	if err != nil {
		return nil, fmt.Errorf("figure5: %w", err)
	}
	seq := results[0]
	d := &Figure5Data{Nodes: nodes}
	for j, spec := range fig4Specs() {
		d.Protocols = append(d.Protocols, pointerLabel(spec))
		d.Speedup = append(d.Speedup, float64(seq.Time)/float64(results[1+j].Time))
	}
	return d, nil
}

// Table renders the speedups.
func (d *Figure5Data) Table() *report.Table {
	t := report.NewTable(fmt.Sprintf("Figure 5: TSP on %d nodes (speedup over sequential)", d.Nodes),
		"hw pointers", "speedup")
	for i, p := range d.Protocols {
		t.AddRow(p, fmt.Sprintf("%.1f", d.Speedup[i]))
	}
	return t
}

// -------------------------------------------------------------- Figure 6

// Figure6Data is the worker-set size histogram of EVOLVE — the paper's
// Figure 6. Buckets map a worker-set size to the number of memory blocks
// whose largest simultaneous worker set had that size.
type Figure6Data struct {
	Hist  *stats.Hist
	Nodes int
}

// Figure6Jobs enumerates the single EVOLVE run behind Figure 6.
func Figure6Jobs(o Options) []sweep.Job {
	nodes := 64
	if o.Quick {
		nodes = 16
	}
	return []sweep.Job{sweep.AppJob("EVOLVE", o.Quick, machine.Config{
		Nodes: nodes, Spec: proto.FullMap(), VictimLines: 8,
	})}
}

// Figure6 runs EVOLVE on 64 nodes under the full-map protocol (which
// tracks every worker set exactly) and collects the histogram.
func Figure6(o Options) (*Figure6Data, error) {
	nodes := 64
	if o.Quick {
		nodes = 16
	}
	results, err := o.run(Figure6Jobs(o))
	if err != nil {
		return nil, fmt.Errorf("figure6: %w", err)
	}
	return &Figure6Data{Hist: results[0].WorkerSetHist(), Nodes: nodes}, nil
}

// Table renders the histogram.
func (d *Figure6Data) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Figure 6: histogram of worker-set sizes for EVOLVE (%d nodes)", d.Nodes),
		"worker set size", "memory blocks")
	for _, b := range d.Hist.Buckets() {
		t.AddRow(fmt.Sprintf("%d", b), fmt.Sprintf("%d", d.Hist.Count(b)))
	}
	return t
}

// ------------------------------------------------------- scaling study

// ScalingData holds speedups as the machine grows, per protocol — the
// extension of Figure 5's question ("what happens at 256 nodes?") to the
// whole spectrum.
type ScalingData struct {
	Sizes     []int
	Protocols []string
	// Speedup[protocol][i] is the speedup at Sizes[i] over sequential.
	Speedup map[string][]float64
}

// scalingShape returns the machine sizes and protocol points of the study.
func scalingShape(o Options) (sizes []int, specs []proto.Spec) {
	sizes = []int{16, 64, 256}
	if o.Quick {
		sizes = []int{4, 16}
	}
	specs = []proto.Spec{
		proto.SoftwareOnly(),
		proto.OnePointer(proto.AckSW),
		proto.LimitLESS(5),
		proto.FullMap(),
	}
	return sizes, specs
}

// ScalingJobs enumerates the scaling study: the sequential TSP baseline
// (shared with Table 3 and Figure 5), then each protocol at each size.
func ScalingJobs(o Options) []sweep.Job {
	sizes, specs := scalingShape(o)
	jobs := []sweep.Job{sweep.AppJob("TSP", o.Quick, machine.Config{
		Nodes: 1, Spec: proto.FullMap(), VictimLines: 8,
	})}
	for _, spec := range specs {
		for _, n := range sizes {
			jobs = append(jobs, sweep.AppJob("TSP", o.Quick, machine.Config{
				Nodes: n, Spec: spec, VictimLines: 8,
			}))
		}
	}
	return jobs
}

// ScalingStudy runs TSP at increasing machine sizes across four protocol
// spectrum points.
func ScalingStudy(o Options) (*ScalingData, error) {
	sizes, specs := scalingShape(o)
	results, err := o.run(ScalingJobs(o))
	if err != nil {
		return nil, fmt.Errorf("scaling: %w", err)
	}
	seq := results[0]
	d := &ScalingData{Sizes: sizes, Speedup: make(map[string][]float64)}
	for _, s := range specs {
		d.Protocols = append(d.Protocols, s.Name)
	}
	for si, spec := range specs {
		for ni := range sizes {
			res := results[1+si*len(sizes)+ni]
			d.Speedup[spec.Name] = append(d.Speedup[spec.Name],
				float64(seq.Time)/float64(res.Time))
		}
	}
	return d, nil
}

// Figure renders the study as speedup series over machine size.
func (d *ScalingData) Figure() *report.Figure {
	f := report.NewFigure("Scaling study: TSP speedup vs machine size",
		"nodes", "speedup over sequential")
	for _, p := range d.Protocols {
		s := f.Line(p)
		for i, n := range d.Sizes {
			s.Add(float64(n), d.Speedup[p][i])
		}
	}
	return f
}

// -------------------------------------------------------- extrapolation

// ExtrapolationData holds TSP speedups and per-node efficiencies at
// machine sizes beyond the paper's reach. Figure 5 stops at 256 nodes —
// the largest machine NWO could simulate in the time the authors had;
// this exhibit continues the same curve to 512 and 1024 nodes, which the
// conservative parallel engine (DESIGN.md §14) makes affordable: the
// simulation is byte-identical to a serial run but finishes in a fraction
// of the wall-clock time.
type ExtrapolationData struct {
	Sizes     []int
	Protocols []string
	// Speedup[protocol][i] is the speedup at Sizes[i] over sequential.
	Speedup map[string][]float64
}

// extrapolationShape returns the machine sizes and protocol points. The
// protocols are Figure 5's headliners: the full-map upper bound, the
// LimitLESS point the paper argues tracks it, and software-only as the
// floor — the question at 1024 nodes is whether the software-extended
// scheme still tracks full-map when the directory working set is 4x
// anything the paper measured.
func extrapolationShape(o Options) (sizes []int, specs []proto.Spec) {
	sizes = []int{256, 512, 1024}
	if o.Quick {
		sizes = []int{8, 32}
	}
	specs = []proto.Spec{
		proto.SoftwareOnly(),
		proto.LimitLESS(5),
		proto.FullMap(),
	}
	return sizes, specs
}

// ExtrapolationJobs enumerates the extrapolation: the sequential TSP
// baseline (the same job the scaling study and Figure 5 submit, so a
// shared runner executes it once), then each protocol at each size.
func ExtrapolationJobs(o Options) []sweep.Job {
	sizes, specs := extrapolationShape(o)
	jobs := []sweep.Job{sweep.AppJob("TSP", o.Quick, machine.Config{
		Nodes: 1, Spec: proto.FullMap(), VictimLines: 8,
	})}
	for _, spec := range specs {
		for _, n := range sizes {
			jobs = append(jobs, sweep.AppJob("TSP", o.Quick, machine.Config{
				Nodes: n, Spec: spec, VictimLines: 8,
			}))
		}
	}
	return jobs
}

// Extrapolation runs TSP at 256, 512, and 1024 nodes across three
// protocol spectrum points.
func Extrapolation(o Options) (*ExtrapolationData, error) {
	sizes, specs := extrapolationShape(o)
	results, err := o.run(ExtrapolationJobs(o))
	if err != nil {
		return nil, fmt.Errorf("extrapolation: %w", err)
	}
	seq := results[0]
	d := &ExtrapolationData{Sizes: sizes, Speedup: make(map[string][]float64)}
	for _, s := range specs {
		d.Protocols = append(d.Protocols, s.Name)
	}
	for si, spec := range specs {
		for ni := range sizes {
			res := results[1+si*len(sizes)+ni]
			d.Speedup[spec.Name] = append(d.Speedup[spec.Name],
				float64(seq.Time)/float64(res.Time))
		}
	}
	return d, nil
}

// Table renders the exhibit as sizes × protocols, each cell the speedup
// over sequential with the per-node efficiency (speedup divided by node
// count) alongside — the number that reveals whether the curve is still
// climbing or has gone flat.
func (d *ExtrapolationData) Table() *report.Table {
	headers := []string{"Nodes"}
	for _, p := range d.Protocols {
		headers = append(headers, p+" speedup", p+" eff")
	}
	t := report.NewTable("Extrapolation: TSP beyond Figure 5 (speedup over sequential; eff = speedup/nodes)",
		headers...)
	for i, n := range d.Sizes {
		row := []string{fmt.Sprintf("%d", n)}
		for _, p := range d.Protocols {
			s := d.Speedup[p][i]
			row = append(row, fmt.Sprintf("%.1f", s), fmt.Sprintf("%.3f", s/float64(n)))
		}
		t.AddRow(row...)
	}
	return t
}

// ---------------------------------------------------------------- Tiers

// TiersData holds WORKER run times across the machine-spectrum families
// (flat, disaggregated, hybrid DRAM/NVM) for each protocol, normalized to
// the flat machine's full-map time. This exhibit extends the paper's
// protocol spectrum along the orthogonal memory-system axis: the same
// software-extended directory spectrum, re-costed on machines the paper's
// hardware could not build.
type TiersData struct {
	Families  []string
	Protocols []string
	// Ratio[family][protocol index] = run time / flat full-map run time.
	Ratio map[string][]float64
}

// tiersFamilies returns the memory-system families the exhibit sweeps, in
// column order, flat first (its full-map point is the normalization base).
func tiersFamilies() []struct {
	Name string
	Cfg  memtier.Config
} {
	return []struct {
		Name string
		Cfg  memtier.Config
	}{
		{"flat", memtier.Config{}},
		{"disaggregated", memtier.DefaultDisaggregated()},
		{"nvm", memtier.DefaultTiered()},
	}
}

// tiersSpecs returns the protocols the exhibit sweeps: the spectrum's
// endpoints and middle, plus the directoryless shared-LLC machine — the
// one protocol point that only exists on the memory-system axis (no
// sharer tracking at all; every access is a direct home access).
func tiersSpecs() []proto.Spec {
	return []proto.Spec{
		proto.FullMap(),
		proto.OnePointer(proto.AckHW),
		proto.LimitLESS(5),
		proto.SoftwareOnly(),
		proto.Directoryless(),
	}
}

// tiersShape returns the WORKER size and iteration count.
func tiersShape(o Options) (setSize, iters int) {
	if o.Quick {
		return 4, 4
	}
	return 8, 10
}

// TiersJobs enumerates the machine-spectrum sweep: for each memory-system
// family, each protocol runs the same WORKER instance on 16 nodes.
func TiersJobs(o Options) []sweep.Job {
	setSize, iters := tiersShape(o)
	var jobs []sweep.Job
	for _, fam := range tiersFamilies() {
		for _, spec := range tiersSpecs() {
			jobs = append(jobs, sweep.WorkerJob(setSize, iters, machine.Config{
				Nodes: 16, Spec: spec, MemTier: fam.Cfg,
			}))
		}
	}
	return jobs
}

// Tiers runs the WORKER machine-spectrum sweep.
func Tiers(o Options) (*TiersData, error) {
	families := tiersFamilies()
	specs := tiersSpecs()
	results, err := o.run(TiersJobs(o))
	if err != nil {
		return nil, fmt.Errorf("tiers: %w", err)
	}
	d := &TiersData{Ratio: make(map[string][]float64)}
	for _, fam := range families {
		d.Families = append(d.Families, fam.Name)
	}
	for _, s := range specs {
		d.Protocols = append(d.Protocols, s.Name)
	}
	base := results[0] // flat full-map
	for fi, fam := range families {
		for si := range specs {
			res := results[fi*len(specs)+si]
			d.Ratio[fam.Name] = append(d.Ratio[fam.Name],
				float64(res.Time)/float64(base.Time))
		}
	}
	return d, nil
}

// Table renders the sweep as protocols × families, flat full-map = 1.00.
func (d *TiersData) Table() *report.Table {
	headers := append([]string{"Protocol"}, d.Families...)
	t := report.NewTable("Machine spectrum: WORKER run time across memory-system families (16 nodes, flat full-map = 1.00)",
		headers...)
	for si, p := range d.Protocols {
		row := []string{p}
		for _, fam := range d.Families {
			row = append(row, fmt.Sprintf("%.2f", d.Ratio[fam][si]))
		}
		t.AddRow(row...)
	}
	return t
}

// ------------------------------------------------------ matrix registry

// Matrix names one sweep-backed experiment: a job-matrix builder paired
// with the assembler/renderer that turns its results into the paper's
// exhibit. The registry is what lets the sweep and distributed front ends
// (cmd/swexsweep, cmd/swexd) resolve exhibits by name and serialize their
// job matrices for submission — every Jobs() element is a canonical,
// hashable, JSON-serializable sweep.Job.
type Matrix struct {
	// Name is the CLI-facing exhibit name ("table1" .. "scaling").
	Name string
	// Caption is the one-line human description of the exhibit.
	Caption string
	// Jobs enumerates the matrix's simulation points in submission order.
	Jobs func(Options) []SweepJob
	// Render runs the matrix through Options.Sweep and renders the
	// exhibit. The output is a pure function of the job results, so it is
	// byte-identical wherever and in whatever order the jobs executed.
	Render func(Options) (string, error)
}

// Matrices returns every sweep-backed exhibit in paper order: the three
// tables, Figures 2-6, the scaling study, the 1024-node extrapolation,
// and the machine-spectrum (memory-tier) study.
func Matrices() []Matrix {
	return []Matrix{
		{"table1", "average software-extension latencies (C vs assembly)", Table1Jobs,
			func(o Options) (string, error) {
				d, err := Table1(o)
				if err != nil {
					return "", err
				}
				return d.Table().String(), nil
			}},
		{"table2", "median handler cycle breakdown", Table2Jobs,
			func(o Options) (string, error) {
				d, err := Table2(o)
				if err != nil {
					return "", err
				}
				return d.String(), nil
			}},
		{"table3", "application characteristics and sequential times", Table3Jobs,
			func(o Options) (string, error) {
				rows, err := Table3(o)
				if err != nil {
					return "", err
				}
				return Table3Table(rows).String(), nil
			}},
		{"fig2", "WORKER protocol performance vs worker-set size", Figure2Jobs,
			func(o Options) (string, error) {
				d, err := Figure2(o)
				if err != nil {
					return "", err
				}
				return d.Figure().String(), nil
			}},
		{"fig3", "TSP cache-configuration study (instruction/data thrashing)", Figure3Jobs,
			func(o Options) (string, error) {
				d, err := Figure3(o)
				if err != nil {
					return "", err
				}
				return d.Table().String(), nil
			}},
		{"fig4", "application speedups across the protocol spectrum", Figure4Jobs,
			func(o Options) (string, error) {
				d, err := Figure4(o)
				if err != nil {
					return "", err
				}
				return d.Table().String(), nil
			}},
		{"fig5", "TSP on 256 nodes", Figure5Jobs,
			func(o Options) (string, error) {
				d, err := Figure5(o)
				if err != nil {
					return "", err
				}
				return d.Table().String(), nil
			}},
		{"fig6", "EVOLVE worker-set histogram", Figure6Jobs,
			func(o Options) (string, error) {
				d, err := Figure6(o)
				if err != nil {
					return "", err
				}
				return d.Table().String(), nil
			}},
		{"scaling", "TSP speedup vs machine size across the spectrum", ScalingJobs,
			func(o Options) (string, error) {
				d, err := ScalingStudy(o)
				if err != nil {
					return "", err
				}
				return d.Figure().String(), nil
			}},
		{"extrapolation", "TSP at 256/512/1024 nodes, beyond Figure 5", ExtrapolationJobs,
			func(o Options) (string, error) {
				d, err := Extrapolation(o)
				if err != nil {
					return "", err
				}
				return d.Table().String(), nil
			}},
		{"tiers", "WORKER across memory-system families (flat, disaggregated, NVM, directoryless)", TiersJobs,
			func(o Options) (string, error) {
				d, err := Tiers(o)
				if err != nil {
					return "", err
				}
				return d.Table().String(), nil
			}},
	}
}

// MatrixByName resolves one exhibit from the registry by its CLI name.
func MatrixByName(name string) (Matrix, bool) {
	for _, m := range Matrices() {
		if m.Name == name {
			return m, true
		}
	}
	return Matrix{}, false
}
