package swex

import (
	"strings"
	"testing"

	"swex/internal/stats"
)

var quick = Options{Quick: true}

func TestPublicAPISmoke(t *testing.T) {
	m, err := NewMachine(MachineConfig{Nodes: 4, Spec: FullMap()})
	if err != nil {
		t.Fatal(err)
	}
	prog := Worker(2, 2)
	inst := prog.Setup(m)
	res, err := m.Run(inst.Thread, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time == 0 {
		t.Fatal("zero run time")
	}
	if len(Spectrum()) != 9 {
		t.Fatalf("spectrum has %d protocols, want 9", len(Spectrum()))
	}
	if len(Apps()) != 6 {
		t.Fatalf("registry has %d apps, want 6", len(Apps()))
	}
	if _, err := AppByName("WATER"); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Shape(t *testing.T) {
	d, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Readers {
		// The hand-tuned handlers are roughly twice as fast.
		if r := d.CRead[i] / d.ARead[i]; r < 1.5 || r > 3.5 {
			t.Errorf("readers=%d: C/asm read ratio %.2f, want ~2", d.Readers[i], r)
		}
		if r := d.CWrite[i] / d.AWrite[i]; r < 1.5 || r > 3.5 {
			t.Errorf("readers=%d: C/asm write ratio %.2f, want ~2", d.Readers[i], r)
		}
		// Write handlers (invalidation transmission) cost more than reads.
		if d.CWrite[i] <= d.CRead[i] {
			t.Errorf("readers=%d: C write (%.0f) not above C read (%.0f)",
				d.Readers[i], d.CWrite[i], d.CRead[i])
		}
		// Latencies land in the paper's few-hundred-cycle regime.
		if d.CRead[i] < 250 || d.CRead[i] > 700 {
			t.Errorf("C read latency %.0f outside the plausible band", d.CRead[i])
		}
	}
	tab := d.Table()
	if tab.Rows() != len(d.Readers) {
		t.Fatal("table rows mismatch")
	}
}

func TestTable2MatchesPaperTotals(t *testing.T) {
	d, err := Table2(quick)
	if err != nil {
		t.Fatal(err)
	}
	// The median read request empties five pointers and records the
	// requester into a recycled entry; the paper's exact totals hold for
	// the fresh-allocation case, the steady-state medians sit slightly
	// below. Check the signature rows and the band.
	if got := d.CRead.Total(); got < 380 || got > 500 {
		t.Errorf("C read median total = %d, want in [380,500] (paper: 480)", got)
	}
	if got := d.CWrite.Total(); got < 600 || got > 800 {
		t.Errorf("C write median total = %d, want in [600,800] (paper: 737)", got)
	}
	if got := d.ARead.Total(); got < 150 || got > 250 {
		t.Errorf("asm read median total = %d, want in [150,250] (paper: 193)", got)
	}
	if got := d.AWrite.Total(); got < 300 || got > 450 {
		t.Errorf("asm write median total = %d, want in [300,450] (paper: 384)", got)
	}
	// Activities the assembly version eliminates must be zero.
	for _, act := range []stats.Activity{stats.ActProtoDispatch, stats.ActSaveState,
		stats.ActHashAdmin, stats.ActNonAlewife} {
		if d.ARead[act] != 0 || d.AWrite[act] != 0 {
			t.Errorf("assembly breakdown charges %s", act)
		}
	}
	// Invalidation lookup+transmit dominates the C write handler.
	if d.CWrite[stats.ActInvalidate] < d.CWrite.Total()/3 {
		t.Error("invalidation transmit should dominate the write handler")
	}
	if !strings.Contains(d.String(), "trap dispatch") {
		t.Error("rendering lost the activity rows")
	}
}

func TestFigure2Shape(t *testing.T) {
	d, err := Figure2(quick)
	if err != nil {
		t.Fatal(err)
	}
	at := func(proto string, size int) float64 {
		for i, k := range d.Sizes {
			if k == size {
				return d.Ratio[proto][i]
			}
		}
		t.Fatalf("size %d not swept", size)
		return 0
	}
	// H5 matches full-map exactly while worker sets fit the pointers.
	if r := at("DirnH5SNB", 2); r != 1.0 {
		t.Errorf("H5 ratio at size 2 = %.3f, want exactly 1.0", r)
	}
	// Beyond the pointers it degrades.
	if r := at("DirnH5SNB", 8); r <= 1.0 {
		t.Errorf("H5 ratio at size 8 = %.3f, want > 1", r)
	}
	// Ordering at size 8: H0 >> ACK >= LACK >= HW-ack >= H2 >= H5.
	h0 := at("DirnH0SNB,ACK", 8)
	ack := at("DirnH1SNB,ACK", 8)
	lack := at("DirnH1SNB,LACK", 8)
	hw := at("DirnH1SNB", 8)
	h2 := at("DirnH2SNB", 8)
	h5 := at("DirnH5SNB", 8)
	if !(h0 > ack && ack >= lack && lack >= hw && hw >= h2 && h2 >= h5) {
		t.Errorf("protocol ordering violated: H0=%.2f ACK=%.2f LACK=%.2f HW=%.2f H2=%.2f H5=%.2f",
			h0, ack, lack, hw, h2, h5)
	}
	// The software-only directory is dramatically worse on this stress
	// test (the paper's "worst possible performance").
	if h0 < 3 {
		t.Errorf("H0 ratio = %.2f, want the wide margin the stress test exaggerates", h0)
	}
	// LACK within 0-50%-ish of the hardware-ack variant (paper Section 5).
	if lack/hw > 1.6 {
		t.Errorf("LACK/HW = %.2f, paper reports 0%%-50%% worse", lack/hw)
	}
	fig := d.Figure()
	if len(fig.Series) != 6 {
		t.Fatalf("figure has %d series, want 6", len(fig.Series))
	}
}

func TestTable3SequentialTimes(t *testing.T) {
	rows, err := Table3(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.SeqCycles == 0 {
			t.Errorf("%s: zero sequential time", r.Name)
		}
		if r.Language == "" || r.Size == "" {
			t.Errorf("%s: missing metadata", r.Name)
		}
	}
	tab := Table3Table(rows)
	if tab.Rows() != 6 {
		t.Fatal("table rows mismatch")
	}
}

func TestFigure3Thrashing(t *testing.T) {
	d, err := Figure3(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Victim caching must recover the software-extended protocols: H5
	// within a factor ~1.5 of full-map; in the base configuration the
	// gap is wider.
	last := len(d.Protocols) - 1 // full map
	h5 := last - 1
	baseGap := d.Speedup["base"][last] / d.Speedup["base"][h5]
	victimGap := d.Speedup["victim-cache"][last] / d.Speedup["victim-cache"][h5]
	if victimGap >= baseGap {
		t.Errorf("victim cache did not close the H5 gap: base %.2f, victim %.2f", baseGap, victimGap)
	}
	if victimGap > 1.6 {
		t.Errorf("victim-cache H5 gap %.2f, want near full-map", victimGap)
	}
	// Perfect ifetch also relieves the thrashing for hardware-pointer
	// protocols (within tolerance: at quick sizes the base-mode gap is
	// already small, so we only require it not to widen materially).
	pifGap := d.Speedup["perfect-ifetch"][last] / d.Speedup["perfect-ifetch"][h5]
	if pifGap > baseGap*1.15 {
		t.Errorf("perfect ifetch widened the H5 gap: base %.2f, pifetch %.2f", baseGap, pifGap)
	}
	if d.Table().Rows() != len(d.Protocols) {
		t.Fatal("table rows mismatch")
	}
}

func TestFigure4Shape(t *testing.T) {
	d, err := Figure4(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range d.Apps {
		s := d.Speedup[app]
		full := s[len(s)-1]
		h5 := s[len(s)-2]
		h0 := s[0]
		if full <= 1 {
			t.Errorf("%s: full-map speedup %.2f <= 1", app, full)
		}
		// Five pointers achieve a large fraction of full-map.
		if h5 < 0.55*full {
			t.Errorf("%s: H5 speedup %.2f below 55%% of full-map %.2f", app, h5, full)
		}
		// The software-only directory is the cheapest and slowest.
		if h0 > full {
			t.Errorf("%s: H0 speedup %.2f above full-map %.2f", app, h0, full)
		}
		// Monotone in hardware pointers (within a small tolerance for
		// the H2-vs-H1 noise on small quick instances).
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1]*0.8 {
				t.Errorf("%s: speedup not roughly monotone in pointers: %v", app, s)
			}
		}
	}
	if d.Table().Rows() != len(d.Protocols) {
		t.Fatal("table rows mismatch")
	}
}

func TestFigure5Scaling(t *testing.T) {
	d, err := Figure5(quick)
	if err != nil {
		t.Fatal(err)
	}
	full := d.Speedup[len(d.Speedup)-1]
	h5 := d.Speedup[len(d.Speedup)-2]
	if full <= 1 {
		t.Fatalf("full-map speedup %.2f", full)
	}
	// The five-pointer system stays close to full-map at scale (the
	// paper reports 6% on 256 nodes).
	if h5 < 0.5*full {
		t.Errorf("H5 speedup %.2f below half of full-map %.2f at %d nodes", h5, full, d.Nodes)
	}
	if d.Table().Rows() != len(d.Protocols) {
		t.Fatal("table rows mismatch")
	}
}

func TestFigure6Histogram(t *testing.T) {
	d, err := Figure6(quick)
	if err != nil {
		t.Fatal(err)
	}
	h := d.Hist
	if h.Count(1) == 0 {
		t.Fatal("no single-node worker sets")
	}
	// Counts decay with size...
	if h.Count(1) < h.Count(4) {
		t.Error("histogram does not decay from size 1 to 4")
	}
	// ...but globally-shared blocks produce a tail near the machine size.
	if h.MaxBucket() < d.Nodes/2 {
		t.Errorf("max worker set %d, want a wide-sharing tail on %d nodes", h.MaxBucket(), d.Nodes)
	}
	if d.Table().Rows() == 0 {
		t.Fatal("empty histogram table")
	}
}

func TestAblateLocalBit(t *testing.T) {
	rows, err := AblateLocalBit(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Removing the bit must not speed things up; WORKER k=5 is built to
	// overflow without it, so the effect is visible there.
	for _, r := range rows {
		if r.Delta() < -0.02 {
			t.Errorf("%s: removing the local bit sped the run up by %.1f%%", r.Name, -100*r.Delta())
		}
	}
	if rows[0].Delta() <= 0 {
		t.Errorf("home-share workload shows no local-bit effect: %+.2f%%", 100*rows[0].Delta())
	}
}

func TestAblateSoftware(t *testing.T) {
	rows, err := AblateSoftware(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Tuned handlers help on average; individual small instances can
	// move a few percent either way from scheduling butterfly effects.
	var mean float64
	for _, r := range rows {
		mean += r.Delta()
		if r.Delta() > 0.10 {
			t.Errorf("%s: assembly handlers slowed the run by %.1f%%", r.Name, 100*r.Delta())
		}
	}
	mean /= float64(len(rows))
	if mean > 0 {
		t.Errorf("assembly handlers slower on average: %+.1f%%", 100*mean)
	}
	if AblationTable("x", rows).Rows() != len(rows) {
		t.Fatal("table rows mismatch")
	}
}

func TestAblateBroadcast(t *testing.T) {
	rows, err := AblateBroadcast(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Baseline <= 0 || r.Variant <= 0 {
			t.Fatalf("%s: degenerate times", r.Name)
		}
	}
}

func TestAblateBatchReads(t *testing.T) {
	rows, err := AblateBatchReads(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
}

func TestAblateParallelInv(t *testing.T) {
	rows, err := AblateParallelInv(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Large worker sets must improve; the effect grows with set size.
	small, large := rows[0].Delta(), rows[1].Delta()
	if large >= 0 {
		t.Errorf("parallel invalidation did not help large worker sets: %+.1f%%", 100*large)
	}
	if large >= small {
		t.Errorf("effect should grow with worker-set size: k-small %+.2f%%, k-large %+.2f%%",
			100*small, 100*large)
	}
}

func TestAblateDataSpecific(t *testing.T) {
	rows, err := AblateDataSpecific(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Promoting the hot read-only table to full-map must help a
	// two-pointer machine.
	if rows[0].Delta() >= 0 {
		t.Errorf("data-specific full-map table did not help: %+.1f%%", 100*rows[0].Delta())
	}
}

func TestAblateMigratory(t *testing.T) {
	rows, err := AblateMigratory(quick)
	if err != nil {
		t.Fatal(err)
	}
	// The adaptation must speed up the canonical migratory workload.
	if rows[0].Delta() >= 0 {
		t.Errorf("migratory adaptation did not help the token ring: %+.1f%%", 100*rows[0].Delta())
	}
}

func TestAblateAssociativity(t *testing.T) {
	rows, err := AblateAssociativity(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Both remedies must relieve the thrashing baseline.
	for _, r := range rows {
		if r.Delta() >= 0 {
			t.Errorf("%s did not improve on the direct-mapped baseline: %+.1f%%",
				r.Name, 100*r.Delta())
		}
	}
}

func TestScalingStudy(t *testing.T) {
	d, err := ScalingStudy(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Full-map speedup grows with machine size; every software-extended
	// protocol stays below it at every size.
	full := d.Speedup["DirnHNBS-"]
	if full[len(full)-1] <= full[0] {
		t.Errorf("full-map speedup did not grow with machine size: %v", full)
	}
	for _, p := range d.Protocols {
		if p == "DirnHNBS-" {
			continue
		}
		for i := range d.Sizes {
			if d.Speedup[p][i] > full[i]*1.05 {
				t.Errorf("%s exceeds full-map at %d nodes: %.2f vs %.2f",
					p, d.Sizes[i], d.Speedup[p][i], full[i])
			}
		}
	}
	if len(d.Figure().Series) != 4 {
		t.Fatal("figure series mismatch")
	}
}

func TestAblateCICO(t *testing.T) {
	rows, err := AblateCICO(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Check-in must help the one-pointer directory-extension protocol,
	// whose writes otherwise always fault into software. The broadcast
	// protocol cannot benefit on a concurrent-read workload: its
	// broadcast bit is sticky precisely because the hardware cannot
	// track untracked copies' check-ins — so only require no harm there.
	if rows[0].Delta() >= 0 {
		t.Errorf("%s: CICO did not help: %+.1f%%", rows[0].Name, 100*rows[0].Delta())
	}
	if rows[1].Delta() > 0.05 {
		t.Errorf("%s: CICO hurt the broadcast protocol: %+.1f%%", rows[1].Name, 100*rows[1].Delta())
	}
}

func TestAblateMultithreading(t *testing.T) {
	rows, err := AblateMultithreading(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Four contexts must cut the cycles-per-miss substantially.
	if rows[0].Delta() > -0.3 {
		t.Errorf("multithreading saved only %.1f%% per miss, want > 30%%", -100*rows[0].Delta())
	}
}

func TestTiersShape(t *testing.T) {
	d, err := Tiers(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Families) != 3 || len(d.Protocols) != 5 {
		t.Fatalf("got %d families × %d protocols, want 3 × 5", len(d.Families), len(d.Protocols))
	}
	// The flat full-map point is the normalization base.
	if d.Ratio["flat"][0] != 1.0 {
		t.Errorf("flat full-map ratio = %.3f, want exactly 1.0", d.Ratio["flat"][0])
	}
	for si, p := range d.Protocols {
		flat := d.Ratio["flat"][si]
		disagg := d.Ratio["disaggregated"][si]
		nvm := d.Ratio["nvm"][si]
		// Moving home memory across a second interconnect tier can only
		// slow a protocol down, and by a lot on this stress test.
		if disagg <= flat {
			t.Errorf("%s: disaggregated %.2f <= flat %.2f", p, disagg, flat)
		}
		// Hybrid DRAM/NVM sits between flat DRAM and disaggregated: the
		// asymmetric NVM latencies cost something, never more than a
		// second network tier.
		if nvm < flat || nvm >= disagg {
			t.Errorf("%s: nvm %.2f outside [flat %.2f, disaggregated %.2f)", p, nvm, flat, disagg)
		}
	}
	// The directoryless machine skips all coherence traffic, so on the
	// flat machine this write-heavy stress test runs faster than any
	// directory protocol — the shared-LLC trade-off the family models.
	dlsIdx := len(d.Protocols) - 1
	if d.Protocols[dlsIdx] != "DLS" {
		t.Fatalf("last protocol = %s, want DLS", d.Protocols[dlsIdx])
	}
	if d.Ratio["flat"][dlsIdx] >= 1.0 {
		t.Errorf("flat DLS ratio = %.2f, want < 1.0 (no coherence traffic)", d.Ratio["flat"][dlsIdx])
	}
	tab := d.Table()
	if tab.Rows() != 5 {
		t.Fatalf("table has %d rows, want 5", tab.Rows())
	}
}
