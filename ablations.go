package swex

import (
	"fmt"

	"swex/internal/apps"
	"swex/internal/machine"
	"swex/internal/mem"
	"swex/internal/proc"
	"swex/internal/proto"
	"swex/internal/report"
	"swex/internal/shm"
)

// AblationRow is one configuration comparison.
type AblationRow struct {
	Name     string
	Baseline float64 // cycles
	Variant  float64 // cycles
}

// Delta returns the variant's run-time change relative to the baseline
// (positive = slower).
func (r AblationRow) Delta() float64 { return r.Variant/r.Baseline - 1 }

// AblationTable renders rows with their deltas.
func AblationTable(title string, rows []AblationRow) *report.Table {
	t := report.NewTable(title, "workload", "baseline", "variant", "delta")
	for _, r := range rows {
		t.AddRow(r.Name,
			fmt.Sprintf("%.0f", r.Baseline),
			fmt.Sprintf("%.0f", r.Variant),
			fmt.Sprintf("%+.1f%%", 100*r.Delta()))
	}
	return t
}

// AblateLocalBit measures the effect of Alewife's one-bit local pointer
// (paper Section 3.1 reports about a 2% improvement; its main value is
// guaranteeing a node cannot overflow its own home directory). The variant
// disables the bit, so home-node accesses consume — and can overflow —
// ordinary hardware pointers. The first workload is built to show the
// mechanism: every node repeatedly reads its own block while exactly five
// remote nodes read it too, so the home's read is the straw that overflows
// a five-pointer directory when the bit is absent.
func AblateLocalBit(o Options) ([]AblationRow, error) {
	withBit := proto.LimitLESS(5)
	without := withBit
	without.LocalBit = false
	without.Name = "DirnH5SNB(no-local-bit)"

	// homeShare: node i owns one block; readers are i itself plus its
	// five ring successors; i rewrites the block each iteration.
	homeShare := apps.Program{
		Name: "home-share",
		Setup: func(m *machine.Machine) apps.Instance {
			P := m.Cfg.Nodes
			slots := m.Mem.AllocStriped(1)
			bar := shm.NewTreeBarrierArity(m.Mem, P, 2)
			thread := func(env *proc.Env) {
				id := int(env.ID())
				for it := 0; it < 8; it++ {
					env.Read(slots[id]) // the home's own read
					for d := 1; d <= 5; d++ {
						env.Read(slots[(id+d)%P])
					}
					bar.Wait(env)
					env.Write(slots[id], uint64(it))
					bar.Wait(env)
				}
			}
			return apps.Instance{Thread: thread}
		},
	}

	workloads := []struct {
		name string
		prog apps.Program
	}{
		{"home-share", homeShare},
		{"WATER", apps.QuickRegistry()[5]},
	}
	nodes := 16
	var rows []AblationRow
	for _, w := range workloads {
		base, err := runApp(w.prog, machine.Config{Nodes: nodes, Spec: withBit, VictimLines: 8})
		if err != nil {
			return nil, fmt.Errorf("local-bit baseline %s: %w", w.name, err)
		}
		varres, err := runApp(w.prog, machine.Config{Nodes: nodes, Spec: without, VictimLines: 8})
		if err != nil {
			return nil, fmt.Errorf("local-bit variant %s: %w", w.name, err)
		}
		rows = append(rows, AblationRow{w.name, float64(base.Time), float64(varres.Time)})
	}
	return rows, nil
}

// AblateSoftware compares application run time under the flexible C
// interface against the hand-tuned assembly handlers (paper Section 4.2:
// the tuned handlers halve handler latency; whole-application impact is
// smaller because handlers are a fraction of run time).
func AblateSoftware(o Options) ([]AblationRow, error) {
	nodes := 64
	registry := apps.Registry()
	if o.Quick {
		nodes = 16
		registry = apps.QuickRegistry()
	}
	var rows []AblationRow
	for _, prog := range registry {
		c, err := runApp(prog, machine.Config{
			Nodes: nodes, Spec: proto.LimitLESS(5),
			Software: machine.FlexibleC, VictimLines: 8,
		})
		if err != nil {
			return nil, fmt.Errorf("software ablation %s: %w", prog.Name, err)
		}
		asm, err := runApp(prog, machine.Config{
			Nodes: nodes, Spec: proto.LimitLESS(5),
			Software: machine.TunedASM, VictimLines: 8,
		})
		if err != nil {
			return nil, fmt.Errorf("software ablation %s: %w", prog.Name, err)
		}
		rows = append(rows, AblationRow{prog.Name, float64(c.Time), float64(asm.Time)})
	}
	return rows, nil
}

// AblateBroadcast compares Dir_nH_1S_NB,LACK (software directory
// extension) with Dir_1H_1S_B,LACK (software broadcast) on WORKER: the
// broadcast protocol trades read-overflow traps for machine-wide
// invalidations on every write to a shared block (paper Section 2.5).
func AblateBroadcast(o Options) ([]AblationRow, error) {
	sizes := []int{2, 8}
	iters := 8
	if o.Quick {
		sizes = []int{4}
		iters = 4
	}
	var rows []AblationRow
	for _, k := range sizes {
		prog := apps.Worker(apps.WorkerParams{SetSize: k, Iters: iters})
		lack, err := runApp(prog, machine.Config{Nodes: 16, Spec: proto.OnePointer(proto.AckLACK)})
		if err != nil {
			return nil, fmt.Errorf("broadcast ablation k=%d: %w", k, err)
		}
		bcast, err := runApp(prog, machine.Config{Nodes: 16, Spec: proto.Dir1SW()})
		if err != nil {
			return nil, fmt.Errorf("broadcast ablation k=%d: %w", k, err)
		}
		rows = append(rows, AblationRow{
			fmt.Sprintf("WORKER k=%d", k), float64(lack.Time), float64(bcast.Time),
		})
	}
	return rows, nil
}

// AblateBatchReads measures the read-burst batching enhancement (a
// Section 7 style protocol-software extension): handlers drain queued read
// requests at incremental cost. It helps widely-read, rarely-written data
// (WATER) and hurts frequently-written queue words (TSP) — the
// "data specific" tradeoff the paper's enhancement section describes.
func AblateBatchReads(o Options) ([]AblationRow, error) {
	nodes := 64
	water := apps.Registry()[5]
	tsp := apps.Registry()[0]
	if o.Quick {
		nodes = 16
		water = apps.QuickRegistry()[5]
		tsp = apps.QuickRegistry()[0]
	}
	var rows []AblationRow
	for _, w := range []struct {
		name string
		prog apps.Program
	}{{"WATER", water}, {"TSP", tsp}} {
		base, err := runApp(w.prog, machine.Config{
			Nodes: nodes, Spec: proto.LimitLESS(5), VictimLines: 8,
		})
		if err != nil {
			return nil, fmt.Errorf("batch ablation %s: %w", w.name, err)
		}
		batched, err := runApp(w.prog, machine.Config{
			Nodes: nodes, Spec: proto.LimitLESS(5), VictimLines: 8, BatchReads: true,
		})
		if err != nil {
			return nil, fmt.Errorf("batch ablation %s: %w", w.name, err)
		}
		rows = append(rows, AblationRow{w.name, float64(base.Time), float64(batched.Time)})
	}
	return rows, nil
}

// AblateParallelInv measures the parallel-invalidation enhancement: the
// write-fault handler's per-invalidation cost drops from sequential
// transmission to a pipelined hand-off. Large worker sets (many
// invalidations per write) benefit; small ones barely notice — the
// size-dependent behavior behind the paper's suggestion to select the
// procedure dynamically (Section 7).
func AblateParallelInv(o Options) ([]AblationRow, error) {
	sizes := []int{2, 15}
	iters := 8
	if o.Quick {
		sizes = []int{2, 8}
		iters = 4
	}
	var rows []AblationRow
	for _, k := range sizes {
		prog := apps.Worker(apps.WorkerParams{SetSize: k, Iters: iters})
		seq, err := runApp(prog, machine.Config{Nodes: 16, Spec: proto.LimitLESS(5)})
		if err != nil {
			return nil, fmt.Errorf("parallel-inv ablation k=%d: %w", k, err)
		}
		par, err := runApp(prog, machine.Config{Nodes: 16, Spec: proto.LimitLESS(5), ParallelInv: true})
		if err != nil {
			return nil, fmt.Errorf("parallel-inv ablation k=%d: %w", k, err)
		}
		rows = append(rows, AblationRow{
			fmt.Sprintf("WORKER k=%d", k), float64(seq.Time), float64(par.Time),
		})
	}
	return rows, nil
}

// AblateDataSpecific measures block-by-block protocol reconfiguration
// (paper Sections 3.1 and 7): EVOLVE's widely-read fitness table is the
// workload's dominant source of read-overflow traps under a small
// directory; promoting exactly those blocks to the full-map protocol —
// a "data specific" coherence type selected from a library — removes the
// traps while the rest of memory keeps the cheap two-pointer directory.
func AblateDataSpecific(o Options) ([]AblationRow, error) {
	nodes := 64
	params := apps.DefaultEvolve()
	if o.Quick {
		nodes = 16
		params = apps.EvolveParams{Dimensions: 10, TotalWalks: 256, StepCycles: 30, Seed: 90125}
	}
	prog := apps.Evolve(params)

	base, err := runApp(prog, machine.Config{Nodes: nodes, Spec: proto.LimitLESS(2), VictimLines: 8})
	if err != nil {
		return nil, fmt.Errorf("data-specific baseline: %w", err)
	}

	m, err := machine.New(machine.Config{Nodes: nodes, Spec: proto.LimitLESS(2), VictimLines: 8})
	if err != nil {
		return nil, err
	}
	inst := prog.Setup(m)
	for _, a := range inst.Regions["fitness-table"] {
		if err := m.ConfigureBlock(mem.BlockOf(a), proto.FullMap()); err != nil {
			return nil, fmt.Errorf("data-specific reconfigure: %w", err)
		}
	}
	varres, err := m.Run(inst.Thread, 0)
	if err != nil {
		return nil, fmt.Errorf("data-specific variant: %w", err)
	}
	return []AblationRow{{
		Name: "EVOLVE fitness table -> full-map", Baseline: float64(base.Time), Variant: float64(varres.Time),
	}}, nil
}

// AblateMigratory measures the migratory-data adaptation (paper Section 7,
// "dynamic detection"). The workload passes a token record around the
// machine: each node in turn reads it, computes, and writes it back — the
// canonical migratory pattern, costing a recall plus an upgrade per hop
// without the adaptation and a single ownership transfer with it.
func AblateMigratory(o Options) ([]AblationRow, error) {
	nodes := 16
	laps := 6
	if o.Quick {
		laps = 3
	}
	tokenRing := apps.Program{
		Name: "token-ring",
		Setup: func(m *machine.Machine) apps.Instance {
			P := m.Cfg.Nodes
			token := m.Mem.AllocOn(0, mem.WordsPerBlock)
			turn := m.Mem.AllocOn(0, mem.WordsPerBlock)
			thread := func(env *proc.Env) {
				id := uint64(env.ID())
				for lap := 0; lap < laps; lap++ {
					myTurn := uint64(lap)*uint64(P) + id
					for {
						cur := env.Read(turn)
						if cur == myTurn {
							break
						}
						env.WaitChange(turn, cur)
					}
					v := env.Read(token) // migratory read ...
					env.Compute(200)
					env.Write(token, v+1) // ... then write by the same node
					env.Write(turn, myTurn+1)
				}
			}
			return apps.Instance{Thread: thread, Probes: map[string]mem.Addr{"token": token}}
		},
	}
	base, err := runApp(tokenRing, machine.Config{Nodes: nodes, Spec: proto.LimitLESS(5)})
	if err != nil {
		return nil, fmt.Errorf("migratory baseline: %w", err)
	}
	adapted, err := runApp(tokenRing, machine.Config{Nodes: nodes, Spec: proto.LimitLESS(5), MigratoryDetect: true})
	if err != nil {
		return nil, fmt.Errorf("migratory variant: %w", err)
	}
	return []AblationRow{{
		Name: "token-ring", Baseline: float64(base.Time), Variant: float64(adapted.Time),
	}}, nil
}

// AblateAssociativity compares the paper's two thrashing remedies head to
// head on the TSP study (Section 8: "implementing victim caches or ...
// building set-associative caches"): the baseline is the plain
// direct-mapped cache; the variants add a victim cache or two ways.
func AblateAssociativity(o Options) ([]AblationRow, error) {
	nodes := 64
	prog := apps.TSP(apps.DefaultTSP())
	if o.Quick {
		nodes = 16
		prog = apps.QuickRegistry()[0]
	}
	base, err := runApp(prog, machine.Config{Nodes: nodes, Spec: proto.LimitLESS(5)})
	if err != nil {
		return nil, fmt.Errorf("associativity baseline: %w", err)
	}
	victim, err := runApp(prog, machine.Config{Nodes: nodes, Spec: proto.LimitLESS(5), VictimLines: 8})
	if err != nil {
		return nil, fmt.Errorf("associativity victim: %w", err)
	}
	twoWay, err := runApp(prog, machine.Config{Nodes: nodes, Spec: proto.LimitLESS(5), CacheWays: 2})
	if err != nil {
		return nil, fmt.Errorf("associativity 2-way: %w", err)
	}
	return []AblationRow{
		{Name: "TSP H5: +victim cache", Baseline: float64(base.Time), Variant: float64(victim.Time)},
		{Name: "TSP H5: 2-way set assoc", Baseline: float64(base.Time), Variant: float64(twoWay.Time)},
	}, nil
}

// AblateCICO measures Check-In/Check-Out program annotations (the
// cooperative-shared-memory directives the paper's Sections 1 and 7
// discuss): WORKER's readers check their copies in after the read phase,
// so every write finds an empty directory and sends no invalidations —
// eliminating exactly the software write faults that dominate the
// one-pointer protocols.
func AblateCICO(o Options) ([]AblationRow, error) {
	k := 8
	iters := 8
	if o.Quick {
		iters = 4
	}
	specs := []proto.Spec{proto.OnePointer(proto.AckLACK), proto.Dir1SW(), proto.LimitLESS(5)}
	var rows []AblationRow
	for _, spec := range specs {
		plain, err := runApp(apps.Worker(apps.WorkerParams{SetSize: k, Iters: iters}),
			machine.Config{Nodes: 16, Spec: spec})
		if err != nil {
			return nil, fmt.Errorf("cico baseline %s: %w", spec.Name, err)
		}
		cico, err := runApp(apps.Worker(apps.WorkerParams{SetSize: k, Iters: iters, CICO: true}),
			machine.Config{Nodes: 16, Spec: spec})
		if err != nil {
			return nil, fmt.Errorf("cico variant %s: %w", spec.Name, err)
		}
		rows = append(rows, AblationRow{
			Name: "WORKER k=8 " + spec.Name, Baseline: float64(plain.Time), Variant: float64(cico.Time),
		})
	}
	return rows, nil
}

// AblateMultithreading measures Sparcle's block multithreading (the
// Alewife latency-tolerance mechanism the machine provides beyond this
// paper's experiments): several hardware contexts per node overlap remote
// misses, paying a context switch per memory operation. The workload
// streams reads of remote blocks — pure latency-bound work. The worker-set
// structure is unchanged; only the per-node miss overlap grows.
func AblateMultithreading(o Options) ([]AblationRow, error) {
	nodes := 16
	blocksPerThread := 24
	if o.Quick {
		blocksPerThread = 12
	}
	stream := func(threads int) apps.Program {
		return apps.Program{
			Name: "miss-stream",
			Setup: func(m *machine.Machine) apps.Instance {
				P := m.Cfg.Nodes
				total := threads * blocksPerThread
				bases := make([]mem.Addr, P)
				for n := 0; n < P; n++ {
					bases[n] = m.Mem.AllocOn(mem.NodeID(n), total*mem.WordsPerBlock)
				}
				thread := func(env *proc.Env) {
					// Each context streams reads of blocks homed on the
					// next node over.
					victim := (int(env.ID()) + 1) % P
					for i := 0; i < blocksPerThread; i++ {
						idx := env.Thread()*blocksPerThread + i
						env.Read(bases[victim] + mem.Addr(idx*mem.WordsPerBlock))
					}
				}
				return apps.Instance{Thread: thread}
			},
		}
	}
	// Equal per-context work: compare cycles per miss.
	one, err := runApp(stream(1), machine.Config{Nodes: nodes, Spec: proto.LimitLESS(5)})
	if err != nil {
		return nil, fmt.Errorf("multithreading baseline: %w", err)
	}
	four, err := runApp(stream(4), machine.Config{Nodes: nodes, Spec: proto.LimitLESS(5), ThreadsPerNode: 4})
	if err != nil {
		return nil, fmt.Errorf("multithreading variant: %w", err)
	}
	// Normalize: the 4-context run performs 4x the misses.
	return []AblationRow{{
		Name:     "remote miss stream (cycles/miss)",
		Baseline: float64(one.Time) / float64(blocksPerThread),
		Variant:  float64(four.Time) / float64(4*blocksPerThread),
	}}, nil
}
